package experiments

import (
	"testing"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/scenario"
)

func TestRunFingerprintDefaultsInvariance(t *testing.T) {
	implicit := core.Options{
		Scenario: scenario.DefaultSpec(scenario.S1, 60),
		Seed:     7,
	}
	explicit := implicit
	explicit.FrictionScale = 1
	explicit.Steps = core.DefaultSteps
	explicit.StepSize = core.DefaultStepSize
	explicit.PatchStart = core.DefaultPatchStart
	explicit.PatchLength = core.DefaultPatchLength

	hi, err := RunFingerprint(implicit)
	if err != nil {
		t.Fatal(err)
	}
	he, err := RunFingerprint(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Errorf("implicit and explicit defaults fingerprint differently: %s vs %s", hi, he)
	}
	if len(hi) != 64 {
		t.Errorf("fingerprint is not a sha256 hex digest: %q", hi)
	}
}

// TestRunFingerprintRejectsML pins the refusal: trained weights
// determine an ML run's outcome but do not serialize, so fingerprinting
// one would collide different networks onto one cache key.
func TestRunFingerprintRejectsML(t *testing.T) {
	opts := core.Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		Interventions: core.InterventionSet{ML: true},
	}
	if _, err := RunFingerprint(opts); err == nil {
		t.Error("RunFingerprint accepted an ML run")
	}
}

func TestRunFingerprintSensitivity(t *testing.T) {
	base := core.Options{
		Scenario: scenario.DefaultSpec(scenario.S1, 60),
		Fault:    fi.DefaultParams(fi.TargetRelDistance),
		Seed:     7,
	}
	h0, err := RunFingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*core.Options){
		"seed":     func(o *core.Options) { o.Seed++ },
		"steps":    func(o *core.Options) { o.Steps = 500 },
		"friction": func(o *core.Options) { o.FrictionScale = 0.5 },
		"fault":    func(o *core.Options) { o.Fault.CurvatureOffset += 0.001 },
		"scenario": func(o *core.Options) { o.Scenario.InitialGap = 61 },
		"iv":       func(o *core.Options) { o.Interventions.Driver = true },
		"generated": func(o *core.Options) {
			o.Scenario = scenario.Spec{
				ID: scenario.IDGenerated, EgoSpeed: 22, InitialGap: 60, SpeedLimit: 22,
				Generated: &scenario.GenSpec{Actors: []scenario.ActorSpec{
					{Name: "lead", Gap: 60, Speed: 13, Behavior: scenario.BehaviorSpec{InitialSpeed: 13}},
				}},
			}
		},
	}
	for name, mutate := range mutations {
		o := base
		mutate(&o)
		h, err := RunFingerprint(o)
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestPoolReusesAcrossBatches pins the pool's whole point: outcomes from
// a long-lived pool executing several sequential batches are identical to
// fresh ExecuteRuns batches (the Reset bit-identity contract, held across
// batch boundaries).
func TestPoolReusesAcrossBatches(t *testing.T) {
	req := func(seed int64) RunRequest {
		return RunRequest{
			Key: RunKey{Scenario: scenario.S1, Gap: 60, Rep: int(seed)},
			Opts: core.Options{
				Scenario: scenario.DefaultSpec(scenario.S1, 60),
				Fault:    fi.DefaultParams(fi.TargetRelDistance),
				Seed:     seed,
				Steps:    300,
			},
		}
	}
	pool := NewPool(2)
	var pooled []RunOutcome
	for batch := 0; batch < 3; batch++ {
		outs, err := pool.Execute([]RunRequest{req(int64(2*batch + 1)), req(int64(2*batch + 2))}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pooled = append(pooled, outs...)
	}
	// Fresh single-batch comparison.
	var reqs []RunRequest
	for seed := int64(1); seed <= 6; seed++ {
		reqs = append(reqs, req(seed))
	}
	fresh, err := ExecuteRuns(4, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(pooled) {
		t.Fatalf("length mismatch %d vs %d", len(fresh), len(pooled))
	}
	for i := range fresh {
		if fresh[i].Outcome != pooled[i].Outcome {
			t.Errorf("run %d: pooled outcome diverges from fresh run", i)
		}
	}
}
