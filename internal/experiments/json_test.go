package experiments

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

func TestRunOutcomeJSONRoundTrip(t *testing.T) {
	ro := RunOutcome{
		Key: RunKey{Scenario: scenario.S3, Gap: 230, Rep: 4},
		Outcome: func() metrics.Outcome {
			o := metrics.NewOutcome() // carries the +Inf minima sentinels
			o.Accident = metrics.AccidentA2
			o.AccidentAt = 31.25
			o.Duration = 31.25
			o.Steps = 3125
			return o
		}(),
	}
	b, err := json.Marshal(ro)
	if err != nil {
		t.Fatal(err)
	}
	var back RunOutcome
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if !reflect.DeepEqual(ro, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, ro)
	}

	// The key's wire names are part of the service API.
	var fields map[string]any
	if err := json.Unmarshal(b, &fields); err != nil {
		t.Fatal(err)
	}
	key, ok := fields["key"].(map[string]any)
	if !ok {
		t.Fatalf("no key object in %s", b)
	}
	for _, name := range []string{"scenario", "gap", "rep"} {
		if _, ok := key[name]; !ok {
			t.Errorf("run key wire format missing %q: %s", name, b)
		}
	}
}

func TestConfigNormalizedDefaults(t *testing.T) {
	n := Config{}.normalized()
	if n.Reps != 10 {
		t.Errorf("Reps = %d, want the paper's 10", n.Reps)
	}
	if n.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism = %d, want GOMAXPROCS", n.Parallelism)
	}
	// Explicit values survive normalization.
	c := Config{Reps: 3, Parallelism: 2, Steps: 500, BaseSeed: 9}.normalized()
	if c.Reps != 3 || c.Parallelism != 2 || c.Steps != 500 || c.BaseSeed != 9 {
		t.Errorf("normalized clobbered explicit values: %+v", c)
	}
	// Negative parallelism is as unusable as zero.
	if c := (Config{Parallelism: -4}).normalized(); c.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("negative Parallelism normalized to %d", c.Parallelism)
	}
}

func TestKeysEnumeration(t *testing.T) {
	keys := Keys([]scenario.ID{scenario.S1, scenario.S2}, []float64{60, 230}, 2)
	if len(keys) != 8 {
		t.Fatalf("len = %d, want 8", len(keys))
	}
	// Scenario-major, then gap, then rep: the canonical campaign order.
	want := RunKey{Scenario: scenario.S1, Gap: 60, Rep: 0}
	if keys[0] != want {
		t.Errorf("keys[0] = %+v, want %+v", keys[0], want)
	}
	want = RunKey{Scenario: scenario.S1, Gap: 60, Rep: 1}
	if keys[1] != want {
		t.Errorf("keys[1] = %+v, want %+v", keys[1], want)
	}
	want = RunKey{Scenario: scenario.S2, Gap: 230, Rep: 1}
	if keys[7] != want {
		t.Errorf("keys[7] = %+v, want %+v", keys[7], want)
	}
}
