package experiments

import (
	"fmt"
	"strings"

	"adasim/internal/aebs"
	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/nn"
)

// InterventionRow is one safety-intervention configuration of Table VI.
type InterventionRow struct {
	Label string
	Set   core.InterventionSet
}

// TableVIRows returns the paper's eight intervention configurations, in
// table order. mlNet may be nil if the ML rows are skipped.
func TableVIRows(mlNet *nn.Network) []InterventionRow {
	rows := []InterventionRow{
		{Label: "none", Set: core.InterventionSet{}},
		{Label: "driver+check", Set: core.InterventionSet{Driver: true, SafetyCheck: true}},
		{Label: "driver+check+aeb-comp", Set: core.InterventionSet{
			Driver: true, SafetyCheck: true, AEB: aebs.SourceCompromised}},
		{Label: "driver+check+aeb-indep", Set: core.InterventionSet{
			Driver: true, SafetyCheck: true, AEB: aebs.SourceIndependent}},
		{Label: "aeb-comp", Set: core.InterventionSet{AEB: aebs.SourceCompromised}},
		{Label: "aeb-indep", Set: core.InterventionSet{AEB: aebs.SourceIndependent}},
		{Label: "driver", Set: core.InterventionSet{Driver: true}},
	}
	if mlNet != nil {
		rows = append(rows, InterventionRow{
			Label: "ml-model",
			Set:   core.InterventionSet{ML: true, MLNet: mlNet},
		})
	}
	return rows
}

// TableVICell is one (fault type, intervention) cell of Table VI.
type TableVICell struct {
	Fault        fi.Target
	Intervention string
	Agg          metrics.Aggregate
}

// TableVIResult is the full fault-injection evaluation.
type TableVIResult struct {
	Cells []TableVICell
}

// Campaign is one (fault, interventions, salt) matrix of a table. The
// salt is part of a table's identity: warming the cache for a table
// means running campaign jobs with exactly these salts.
type Campaign struct {
	Label         string
	Fault         fi.Params
	Interventions core.InterventionSet
	Salt          int64
}

// TableVICampaigns enumerates Table VI's campaigns in table order, so
// external warmers (campaign-service jobs, benchmarks) can cover the
// exact run grid the table executes.
func TableVICampaigns(rows []InterventionRow) []Campaign {
	var cs []Campaign
	for fi_, target := range fi.Targets() {
		for ri, row := range rows {
			cs = append(cs, Campaign{
				Label:         row.Label,
				Fault:         fi.DefaultParams(target),
				Interventions: row.Set,
				Salt:          int64(100 + 10*fi_ + ri),
			})
		}
	}
	return cs
}

// TableVI runs the paper's central fault-injection campaign: every fault
// type against every intervention configuration.
func TableVI(cfg Config, rows []InterventionRow) (*TableVIResult, error) {
	res := &TableVIResult{}
	for _, c := range TableVICampaigns(rows) {
		runs, err := RunMatrix(cfg, c.Fault, c.Interventions, c.Salt)
		if err != nil {
			return nil, fmt.Errorf("table vi (%v, %s): %w", c.Fault.Target, c.Label, err)
		}
		res.Cells = append(res.Cells, TableVICell{
			Fault:        c.Fault.Target,
			Intervention: c.Label,
			Agg:          metrics.AggregateOutcomes(Outcomes(runs)),
		})
	}
	return res, nil
}

// Cell returns the cell for a fault/intervention pair, or nil.
func (r *TableVIResult) Cell(target fi.Target, intervention string) *TableVICell {
	for i := range r.Cells {
		if r.Cells[i].Fault == target && r.Cells[i].Intervention == intervention {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render formats the campaign in the paper's Table VI layout.
func (r *TableVIResult) Render() string {
	var b strings.Builder
	b.WriteString("TABLE VI: Fault Injection with or w/o Safety Interventions\n")
	fmt.Fprintf(&b, "%-18s %-23s %7s %7s %9s | %7s %7s %7s | %7s %7s %7s\n",
		"Fault", "Interventions", "A1", "A2", "Prevented",
		"tAEB(s)", "tDrB(s)", "tDrS(s)", "AEB%", "DrB%", "DrS%")
	last := fi.TargetNone
	for _, c := range r.Cells {
		name := ""
		if c.Fault != last {
			name = c.Fault.String()
			last = c.Fault
		}
		fmt.Fprintf(&b, "%-18s %-23s %6.2f%% %6.2f%% %8.2f%% | %7.2f %7.2f %7.2f | %6.1f%% %6.1f%% %6.1f%%\n",
			name, c.Intervention,
			c.Agg.A1Rate*100, c.Agg.A2Rate*100, c.Agg.Prevented*100,
			c.Agg.AvgAEBTime, c.Agg.AvgDriverBrakeTime, c.Agg.AvgDriverSteerTime,
			c.Agg.AEBTriggerRate*100, c.Agg.DriverBrakeTriggerRate*100,
			c.Agg.DriverSteerTriggerRate*100)
	}
	return b.String()
}
