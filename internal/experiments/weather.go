package experiments

import (
	"fmt"
	"strings"

	"adasim/internal/aebs"
	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/perception"
)

// WeatherCondition couples the two environmental effects the paper
// discusses (Section IV-E5): road friction (which MetaDrive let them
// vary) and camera visibility (which it did not — our perception model
// does, so this study extends Table VIII with the visibility axis).
type WeatherCondition struct {
	Name string
	// FrictionScale multiplies dry-road friction.
	FrictionScale float64
	// DetectionRange is the camera's effective lead-detection range (m).
	DetectionRange float64
	// NoiseScale multiplies all perception noise levels.
	NoiseScale float64
}

// WeatherConditions returns the sweep: clear, rain, heavy rain, fog, ice.
func WeatherConditions() []WeatherCondition {
	return []WeatherCondition{
		{Name: "clear", FrictionScale: 1.0, DetectionRange: 80, NoiseScale: 1.0},
		{Name: "rain", FrictionScale: 0.75, DetectionRange: 65, NoiseScale: 1.5},
		{Name: "heavy-rain", FrictionScale: 0.5, DetectionRange: 50, NoiseScale: 2.0},
		{Name: "fog", FrictionScale: 0.9, DetectionRange: 35, NoiseScale: 2.5},
		{Name: "ice", FrictionScale: 0.25, DetectionRange: 80, NoiseScale: 1.0},
	}
}

// WeatherCell is one (fault, condition) prevention rate with its 95 %
// confidence interval.
type WeatherCell struct {
	Fault     fi.Target
	Condition string
	CI        metrics.RateCI
}

// WeatherStudy runs the Table VIII intervention set (driver + safety
// check + AEB on compromised data) across the weather sweep.
func WeatherStudy(cfg Config) ([]WeatherCell, error) {
	iv := core.InterventionSet{Driver: true, SafetyCheck: true, AEB: aebs.SourceCompromised}
	targets := []fi.Target{fi.TargetRelDistance, fi.TargetCurvature}
	var cells []WeatherCell
	for ti, target := range targets {
		for wi, cond := range WeatherConditions() {
			cond := cond
			runCfg := cfg
			parentModify := cfg.Modify
			runCfg.Modify = func(o *core.Options) {
				o.FrictionScale = cond.FrictionScale
				pcfg := perception.DefaultConfig()
				pcfg.DetectionRange = cond.DetectionRange
				pcfg.DistanceNoise *= cond.NoiseScale
				pcfg.SpeedNoise *= cond.NoiseScale
				pcfg.LaneNoise *= cond.NoiseScale
				pcfg.CurvatureNoise *= cond.NoiseScale
				o.Perception = &pcfg
				if parentModify != nil {
					parentModify(o)
				}
			}
			runs, err := RunMatrix(runCfg, fi.DefaultParams(target), iv,
				int64(500+10*ti+wi))
			if err != nil {
				return nil, fmt.Errorf("weather study (%v, %s): %w", target, cond.Name, err)
			}
			cells = append(cells, WeatherCell{
				Fault:     target,
				Condition: cond.Name,
				CI:        metrics.PreventionCI(Outcomes(runs)),
			})
		}
	}
	return cells, nil
}

// RenderWeatherStudy formats the weather sweep with confidence intervals.
func RenderWeatherStudy(cells []WeatherCell) string {
	var b strings.Builder
	b.WriteString("WEATHER STUDY: Prevention Rate vs Environmental Conditions\n")
	b.WriteString("(driver + safety check + AEB compromised; 95% Wilson CIs)\n")
	fmt.Fprintf(&b, "%-18s %-11s %10s %18s\n", "Fault Type", "Condition", "Prevented", "95% CI")
	last := fi.TargetNone
	for _, c := range cells {
		name := ""
		if c.Fault != last {
			name = c.Fault.String()
			last = c.Fault
		}
		fmt.Fprintf(&b, "%-18s %-11s %9.2f%% [%6.2f%%, %6.2f%%]\n",
			name, c.Condition, c.CI.Rate*100, c.CI.Lo*100, c.CI.Hi*100)
	}
	return b.String()
}
