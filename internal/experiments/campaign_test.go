package experiments

import (
	"testing"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/scenario"
)

// TestSeedForFractionalGaps guards the seed derivation against the
// truncation bug where fractional gaps (e.g. 1.25 vs 1.75) collided to
// identical seeds.
func TestSeedForFractionalGaps(t *testing.T) {
	a := RunKey{Scenario: scenario.S1, Gap: 1.25, Rep: 0}
	b := RunKey{Scenario: scenario.S1, Gap: 1.75, Rep: 0}
	if SeedFor(1, a, 0) == SeedFor(1, b, 0) {
		t.Error("fractional gaps 1.25 and 1.75 derive identical seeds")
	}
	// Still deterministic for equal inputs.
	if SeedFor(1, a, 0) != SeedFor(1, a, 0) {
		t.Error("seedFor is not deterministic")
	}
	// And never negative (used directly as a rand source seed).
	if s := SeedFor(-3, b, 17); s < 0 {
		t.Errorf("seed %d is negative", s)
	}
}

// TestRunMatrixMatchesFreshRuns verifies that the worker pool's platform
// reuse does not change campaign results: every outcome must equal the
// one produced by a fresh core.Run with the same options and seed, in the
// same deterministic order.
func TestRunMatrixMatchesFreshRuns(t *testing.T) {
	cfg := Config{Reps: 2, Steps: 800, BaseSeed: 7, Parallelism: 3}
	fault := fi.DefaultParams(fi.TargetMixed)
	iv := core.InterventionSet{Driver: true, SafetyCheck: true}
	const salt = 21

	got, err := RunMatrix(cfg, fault, iv, salt)
	if err != nil {
		t.Fatal(err)
	}

	i := 0
	for _, id := range scenario.All() {
		for _, gap := range scenario.InitialGaps() {
			for rep := 0; rep < cfg.Reps; rep++ {
				key := RunKey{Scenario: id, Gap: gap, Rep: rep}
				if got[i].Key != key {
					t.Fatalf("outs[%d].Key = %+v, want %+v (ordering broken)", i, got[i].Key, key)
				}
				res, err := core.Run(core.Options{
					Scenario:      scenario.DefaultSpec(id, gap),
					Fault:         fault,
					Interventions: iv,
					Seed:          SeedFor(cfg.BaseSeed, key, salt),
					Steps:         cfg.Steps,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Outcome != res.Outcome {
					t.Errorf("run %v/%v/%d: reused-platform outcome differs from fresh run\nreused: %+v\nfresh:  %+v",
						id, gap, rep, got[i].Outcome, res.Outcome)
				}
				i++
			}
		}
	}
}

// TestRunMatrixReusedDeterminism runs the same campaign twice; worker
// scheduling differs between the invocations, so equal results prove the
// outcomes do not depend on which worker (and therefore which recycled
// platform) executes which run.
func TestRunMatrixReusedDeterminism(t *testing.T) {
	cfg := Config{Reps: 2, Steps: 600, BaseSeed: 3, Parallelism: 4}
	fault := fi.DefaultParams(fi.TargetRelDistance)
	iv := core.InterventionSet{Driver: true}
	a, err := RunMatrix(cfg, fault, iv, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1 // maximally different run-to-worker assignment
	b, err := RunMatrix(cfg, fault, iv, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("run %d differs across parallelism levels:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
