// Package experiments defines the paper's evaluation campaigns: one
// generator per table and figure in Section IV, built on the core
// closed-loop platform. Campaigns fan runs out over a worker pool and are
// deterministic for a fixed base seed.
package experiments

import (
	"math"
	"runtime"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

// Config are the campaign-level knobs shared by every experiment.
type Config struct {
	// Reps is the number of repetitions per configuration (10 in the
	// paper). Reduce for quick runs.
	Reps int
	// Steps caps each run's length; zero uses core.DefaultSteps.
	Steps int
	// Parallelism bounds concurrent runs; zero uses GOMAXPROCS.
	Parallelism int
	// BaseSeed decorrelates whole campaigns; runs derive their seeds
	// from it deterministically.
	BaseSeed int64
	// Modify, when non-nil, is applied to every run's options before
	// execution (used by sweeps and ablations).
	Modify func(*core.Options)
}

// DefaultConfig returns the paper's campaign dimensions.
func DefaultConfig() Config {
	return Config{Reps: 10, BaseSeed: 1}
}

// normalized fills in defaults.
func (c Config) normalized() Config {
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunKey identifies one run within a campaign. The json tags define the
// stable wire format used by campaign-service results.
type RunKey struct {
	Scenario scenario.ID `json:"scenario"`
	Gap      float64     `json:"gap"`
	Rep      int         `json:"rep"`
}

// SeedFor derives a deterministic per-run seed. The gap is hashed via its
// IEEE-754 bit pattern: truncating it to int64 collided fractional gaps
// (1.25 and 1.75 derived identical seeds). It is exported so the campaign
// service derives the exact seeds RunMatrix would, keeping cached and
// freshly executed runs interchangeable.
func SeedFor(base int64, key RunKey, salt int64) int64 {
	h := base
	h = h*1000003 + int64(key.Scenario)
	h = h*1000003 + int64(math.Float64bits(key.Gap))
	h = h*1000003 + int64(key.Rep)
	h = h*1000003 + salt
	if h < 0 {
		h = -h
	}
	return h
}

// RunOutcome pairs a run key with its outcome.
type RunOutcome struct {
	Key     RunKey          `json:"key"`
	Outcome metrics.Outcome `json:"outcome"`
}

// RunMatrix executes scenarios x gaps x reps runs of the given fault and
// intervention set, applying cfg.Modify last. It returns outcomes in a
// deterministic order.
//
// Runs fan out over cfg.Parallelism workers; each worker owns one
// long-lived core.Platform that it resets per run, so the road map,
// perception/monitor buffers, and ML inference scratch are built once per
// worker instead of once per run. Every run is fully determined by its
// options and derived seed (core.Platform.Reset guarantees bit-identical
// trajectories versus a fresh platform), so results do not depend on
// which worker executes which run.
func RunMatrix(cfg Config, fault fi.Params, iv core.InterventionSet, salt int64) ([]RunOutcome, error) {
	cfg = cfg.normalized()
	keys := Keys(scenario.All(), scenario.InitialGaps(), cfg.Reps)
	reqs := make([]RunRequest, len(keys))
	for i, key := range keys {
		opts := core.Options{
			Scenario:      scenario.DefaultSpec(key.Scenario, key.Gap),
			Fault:         fault,
			Interventions: iv,
			Seed:          SeedFor(cfg.BaseSeed, key, salt),
			Steps:         cfg.Steps,
		}
		if cfg.Modify != nil {
			cfg.Modify(&opts)
		}
		reqs[i] = RunRequest{Key: key, Opts: opts}
	}
	return ExecuteRuns(cfg.Parallelism, reqs, nil)
}

// Outcomes strips run keys.
func Outcomes(rs []RunOutcome) []metrics.Outcome {
	outs := make([]metrics.Outcome, len(rs))
	for i, r := range rs {
		outs[i] = r.Outcome
	}
	return outs
}

// FilterByScenario returns the outcomes belonging to one scenario.
func FilterByScenario(rs []RunOutcome, id scenario.ID) []metrics.Outcome {
	var outs []metrics.Outcome
	for _, r := range rs {
		if r.Key.Scenario == id {
			outs = append(outs, r.Outcome)
		}
	}
	return outs
}
