// Package experiments defines the paper's evaluation campaigns: one
// generator per table and figure in Section IV, built on the core
// closed-loop platform. Campaigns fan runs out over a worker pool and are
// deterministic for a fixed base seed.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

// Config are the campaign-level knobs shared by every experiment.
type Config struct {
	// Reps is the number of repetitions per configuration (10 in the
	// paper). Reduce for quick runs.
	Reps int
	// Steps caps each run's length; zero uses core.DefaultSteps.
	Steps int
	// Parallelism bounds concurrent runs; zero uses GOMAXPROCS.
	Parallelism int
	// BaseSeed decorrelates whole campaigns; runs derive their seeds
	// from it deterministically.
	BaseSeed int64
	// Modify, when non-nil, is applied to every run's options before
	// execution (used by sweeps and ablations).
	Modify func(*core.Options)
}

// DefaultConfig returns the paper's campaign dimensions.
func DefaultConfig() Config {
	return Config{Reps: 10, BaseSeed: 1}
}

// normalized fills in defaults.
func (c Config) normalized() Config {
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunKey identifies one run within a campaign.
type RunKey struct {
	Scenario scenario.ID
	Gap      float64
	Rep      int
}

// seedFor derives a deterministic per-run seed.
func seedFor(base int64, key RunKey, salt int64) int64 {
	h := base
	h = h*1000003 + int64(key.Scenario)
	h = h*1000003 + int64(key.Gap)
	h = h*1000003 + int64(key.Rep)
	h = h*1000003 + salt
	if h < 0 {
		h = -h
	}
	return h
}

// RunOutcome pairs a run key with its outcome.
type RunOutcome struct {
	Key     RunKey
	Outcome metrics.Outcome
}

// RunMatrix executes scenarios x gaps x reps runs of the given fault and
// intervention set, applying cfg.Modify last. It returns outcomes in a
// deterministic order.
func RunMatrix(cfg Config, fault fi.Params, iv core.InterventionSet, salt int64) ([]RunOutcome, error) {
	cfg = cfg.normalized()
	var keys []RunKey
	for _, id := range scenario.All() {
		for _, gap := range scenario.InitialGaps() {
			for rep := 0; rep < cfg.Reps; rep++ {
				keys = append(keys, RunKey{Scenario: id, Gap: gap, Rep: rep})
			}
		}
	}
	outs := make([]RunOutcome, len(keys))
	errs := make([]error, len(keys))

	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key RunKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			opts := core.Options{
				Scenario:      scenario.DefaultSpec(key.Scenario, key.Gap),
				Fault:         fault,
				Interventions: iv,
				Seed:          seedFor(cfg.BaseSeed, key, salt),
				Steps:         cfg.Steps,
			}
			if cfg.Modify != nil {
				cfg.Modify(&opts)
			}
			res, err := core.Run(opts)
			if err != nil {
				errs[i] = fmt.Errorf("run %v/%v/%d: %w", key.Scenario, key.Gap, key.Rep, err)
				return
			}
			outs[i] = RunOutcome{Key: key, Outcome: res.Outcome}
		}(i, key)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Outcomes strips run keys.
func Outcomes(rs []RunOutcome) []metrics.Outcome {
	outs := make([]metrics.Outcome, len(rs))
	for i, r := range rs {
		outs[i] = r.Outcome
	}
	return outs
}

// FilterByScenario returns the outcomes belonging to one scenario.
func FilterByScenario(rs []RunOutcome, id scenario.ID) []metrics.Outcome {
	var outs []metrics.Outcome
	for _, r := range rs {
		if r.Key.Scenario == id {
			outs = append(outs, r.Outcome)
		}
	}
	return outs
}
