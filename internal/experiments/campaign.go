// Package experiments defines the paper's evaluation campaigns: one
// generator per table and figure in Section IV, built on the core
// closed-loop platform. Campaigns fan runs out over a worker pool and are
// deterministic for a fixed base seed.
package experiments

import (
	"math"
	"runtime"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

// Executor executes a batch of runs with index-ordered results. Pool
// implements it for in-process campaigns; the campaign service adapts
// its worker shards to it so every workload shares the daemon's
// long-lived platforms.
type Executor interface {
	Execute(reqs []RunRequest, onDone func(i int, ro RunOutcome)) ([]RunOutcome, error)
}

// Cache is a content-addressed per-run outcome store keyed by
// RunFingerprint hashes. service.ResultCache implements it.
type Cache interface {
	Get(key string) (metrics.Outcome, bool)
	Put(key string, out metrics.Outcome)
}

// Config are the campaign-level knobs shared by every experiment.
type Config struct {
	// Reps is the number of repetitions per configuration (10 in the
	// paper). Reduce for quick runs.
	Reps int
	// Steps caps each run's length; zero uses core.DefaultSteps.
	Steps int
	// Parallelism bounds concurrent runs; zero uses GOMAXPROCS.
	Parallelism int
	// BaseSeed decorrelates whole campaigns; runs derive their seeds
	// from it deterministically.
	BaseSeed int64
	// Modify, when non-nil, is applied to every run's options before
	// execution (used by sweeps and ablations).
	Modify func(*core.Options)
	// Executor, when non-nil, executes every campaign batch; the default
	// fans out over a fresh pool of Parallelism workers per batch. The
	// report subsystem and the campaign service set it so tables and
	// figures run on their long-lived platform shards.
	Executor Executor
	// Cache, when non-nil, short-circuits runs whose fingerprint is
	// already stored and writes fresh outcomes back. Trace-recording runs
	// and runs that cannot be fingerprinted (ML) always execute.
	Cache Cache
}

// DefaultConfig returns the paper's campaign dimensions.
func DefaultConfig() Config {
	return Config{Reps: 10, BaseSeed: 1}
}

// normalized fills in defaults.
func (c Config) normalized() Config {
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunKey identifies one run within a campaign. The json tags define the
// stable wire format used by campaign-service results.
type RunKey struct {
	Scenario scenario.ID `json:"scenario"`
	Gap      float64     `json:"gap"`
	Rep      int         `json:"rep"`
}

// SeedFor derives a deterministic per-run seed. The gap is hashed via its
// IEEE-754 bit pattern: truncating it to int64 collided fractional gaps
// (1.25 and 1.75 derived identical seeds). It is exported so the campaign
// service derives the exact seeds RunMatrix would, keeping cached and
// freshly executed runs interchangeable.
func SeedFor(base int64, key RunKey, salt int64) int64 {
	h := base
	h = h*1000003 + int64(key.Scenario)
	h = h*1000003 + int64(math.Float64bits(key.Gap))
	h = h*1000003 + int64(key.Rep)
	h = h*1000003 + salt
	if h < 0 {
		h = -h
	}
	return h
}

// RunOutcome pairs a run key with its outcome.
type RunOutcome struct {
	Key     RunKey          `json:"key"`
	Outcome metrics.Outcome `json:"outcome"`
	// Trace is the recorded per-step time series when the run's options
	// set RecordTrace (figure runs). It is excluded from the wire format
	// and never cached; cached runs always re-execute when a trace is
	// needed.
	Trace *metrics.Trace `json:"-"`
}

// RunMatrix executes scenarios x gaps x reps runs of the given fault and
// intervention set, applying cfg.Modify last. It returns outcomes in a
// deterministic order.
//
// Runs fan out over cfg.Parallelism workers; each worker owns one
// long-lived core.Platform that it resets per run, so the road map,
// perception/monitor buffers, and ML inference scratch are built once per
// worker instead of once per run. Every run is fully determined by its
// options and derived seed (core.Platform.Reset guarantees bit-identical
// trajectories versus a fresh platform), so results do not depend on
// which worker executes which run.
func RunMatrix(cfg Config, fault fi.Params, iv core.InterventionSet, salt int64) ([]RunOutcome, error) {
	cfg = cfg.normalized()
	keys := Keys(scenario.All(), scenario.InitialGaps(), cfg.Reps)
	reqs := make([]RunRequest, len(keys))
	for i, key := range keys {
		opts := core.Options{
			Scenario:      scenario.DefaultSpec(key.Scenario, key.Gap),
			Fault:         fault,
			Interventions: iv,
			Seed:          SeedFor(cfg.BaseSeed, key, salt),
			Steps:         cfg.Steps,
		}
		if cfg.Modify != nil {
			cfg.Modify(&opts)
		}
		reqs[i] = RunRequest{Key: key, Opts: opts}
	}
	return cfg.execute(reqs)
}

// execute resolves a planned batch through the config's executor and
// cache: cached outcomes short-circuit, the rest fan out, and fresh
// outcomes are written back. Results keep the request order, so the
// output never depends on executor shard count or cache warmth. Runs
// that record a trace, or that cannot be fingerprinted (ML), bypass the
// cache lookup and always execute.
func (c Config) execute(reqs []RunRequest) ([]RunOutcome, error) {
	exec := c.Executor
	if exec == nil {
		exec = NewPool(c.Parallelism)
	}
	if c.Cache == nil {
		return exec.Execute(reqs, nil)
	}
	outs := make([]RunOutcome, len(reqs))
	var missed []int
	var keys []string
	var fp FingerprintScratch
	for i, req := range reqs {
		key := ""
		if !req.Opts.RecordTrace {
			if k, err := fp.Fingerprint(req.Opts); err == nil {
				key = k
			}
		}
		if key != "" {
			if out, ok := c.Cache.Get(key); ok {
				outs[i] = RunOutcome{Key: req.Key, Outcome: out}
				continue
			}
		}
		missed = append(missed, i)
		keys = append(keys, key)
	}
	if len(missed) == 0 {
		return outs, nil // fully cache-served: skip the executor fan-out
	}
	sub := make([]RunRequest, len(missed))
	for j, i := range missed {
		sub[j] = reqs[i]
	}
	fresh, err := exec.Execute(sub, nil)
	if err != nil {
		return nil, err
	}
	for j, i := range missed {
		outs[i] = fresh[j]
		if keys[j] != "" {
			c.Cache.Put(keys[j], fresh[j].Outcome)
		}
	}
	return outs, nil
}

// Outcomes strips run keys.
func Outcomes(rs []RunOutcome) []metrics.Outcome {
	outs := make([]metrics.Outcome, len(rs))
	for i, r := range rs {
		outs[i] = r.Outcome
	}
	return outs
}

// FilterByScenario returns the outcomes belonging to one scenario.
func FilterByScenario(rs []RunOutcome, id scenario.ID) []metrics.Outcome {
	var outs []metrics.Outcome
	for _, r := range rs {
		if r.Key.Scenario == id {
			outs = append(outs, r.Outcome)
		}
	}
	return outs
}
