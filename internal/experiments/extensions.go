package experiments

import (
	"fmt"
	"strings"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
)

// ExtensionCell is one (attack, mitigation) cell of the extension study:
// the rule-based runtime monitor evaluated against both the paper's
// attacks and the stealthier extension attacks.
type ExtensionCell struct {
	Attack     string
	Mitigation string
	Agg        metrics.Aggregate
}

// ExtensionStudy evaluates {no mitigation, runtime monitor} against the
// paper's three fault types plus the three extension attacks. It answers
// two questions the paper leaves open: how far does a knowledge-driven
// monitor get compared to the ML baseline, and which attacks evade it.
func ExtensionStudy(cfg Config) ([]ExtensionCell, error) {
	type attack struct {
		name     string
		classic  fi.Target
		extended fi.Target
	}
	attacks := []attack{
		{name: "relative-distance", classic: fi.TargetRelDistance},
		{name: "desired-curvature", classic: fi.TargetCurvature},
		{name: "mixed", classic: fi.TargetMixed},
		{name: "lead-removal", extended: fi.TargetLeadRemoval},
		{name: "stealthy-distance", extended: fi.TargetStealthyDistance},
		{name: "lane-shift", extended: fi.TargetLaneShift},
	}
	mitigations := []struct {
		name string
		set  core.InterventionSet
	}{
		{"none", core.InterventionSet{}},
		{"monitor", core.InterventionSet{Monitor: true}},
	}

	var cells []ExtensionCell
	for ai, atk := range attacks {
		var fault fi.Params
		if atk.classic != 0 {
			fault = fi.DefaultParams(atk.classic)
		}
		for mi, mit := range mitigations {
			runCfg := cfg
			parentModify := cfg.Modify
			ext := atk.extended
			runCfg.Modify = func(o *core.Options) {
				o.ExtendedFault = ext
				if parentModify != nil {
					parentModify(o)
				}
			}
			runs, err := RunMatrix(runCfg, fault, mit.set, int64(400+10*ai+mi))
			if err != nil {
				return nil, fmt.Errorf("extension study (%s, %s): %w", atk.name, mit.name, err)
			}
			cells = append(cells, ExtensionCell{
				Attack:     atk.name,
				Mitigation: mit.name,
				Agg:        metrics.AggregateOutcomes(Outcomes(runs)),
			})
		}
	}
	return cells, nil
}

// RenderExtensionStudy formats the extension study table.
func RenderExtensionStudy(cells []ExtensionCell) string {
	var b strings.Builder
	b.WriteString("EXTENSION STUDY: Rule-Based Runtime Monitor vs Attacks\n")
	fmt.Fprintf(&b, "%-20s %-10s %7s %7s %10s\n", "Attack", "Mitigation", "A1", "A2", "Prevented")
	last := ""
	for _, c := range cells {
		name := ""
		if c.Attack != last {
			name = c.Attack
			last = c.Attack
		}
		fmt.Fprintf(&b, "%-20s %-10s %6.2f%% %6.2f%% %9.2f%%\n",
			name, c.Mitigation, c.Agg.A1Rate*100, c.Agg.A2Rate*100, c.Agg.Prevented*100)
	}
	return b.String()
}
