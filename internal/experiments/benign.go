package experiments

import (
	"fmt"
	"math"
	"strings"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

// TableIVRow is one scenario row of Table IV: OpenPilot's fault-free
// driving performance.
type TableIVRow struct {
	Scenario          scenario.ID
	Runs              int
	Hazards           int     // runs with any hazard (H1 or H2)
	Accidents         int     // runs ending in an accident
	FollowingDistance float64 // mean stable-following gap (m)
	HardestBrake      float64 // mean of per-run max brake fraction
	MinTTC            float64 // min over runs of min TTC (s)
	MinTFCW           float64 // min over runs of min t_fcw (s)
}

// TableIVResult is the full table plus the per-run outcomes (reused by
// Table V and Figure 5).
type TableIVResult struct {
	Rows []TableIVRow
	Runs []RunOutcome
}

// TableIV runs the fault-free campaign (no interventions) and aggregates
// the paper's Table IV metrics per scenario.
func TableIV(cfg Config) (*TableIVResult, error) {
	runs, err := RunMatrix(cfg, fi.Params{}, core.InterventionSet{}, 40)
	if err != nil {
		return nil, fmt.Errorf("table iv: %w", err)
	}
	res := &TableIVResult{Runs: runs}
	for _, id := range scenario.All() {
		outs := FilterByScenario(runs, id)
		row := TableIVRow{Scenario: id, Runs: len(outs), MinTTC: math.Inf(1), MinTFCW: math.Inf(1)}
		var followSum, brakeSum float64
		var followN int
		for _, o := range outs {
			if o.HazardH1 || o.HazardH2 {
				row.Hazards++
			}
			if o.Accident != metrics.AccidentNone {
				row.Accidents++
			}
			if o.FollowingDistance >= 0 {
				followSum += o.FollowingDistance
				followN++
			}
			brakeSum += o.HardestBrake
			if o.MinTTC < row.MinTTC {
				row.MinTTC = o.MinTTC
			}
			if o.MinTFCW < row.MinTFCW {
				row.MinTFCW = o.MinTFCW
			}
		}
		if followN > 0 {
			row.FollowingDistance = followSum / float64(followN)
		}
		if len(outs) > 0 {
			row.HardestBrake = brakeSum / float64(len(outs))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the table in the paper's layout.
func (r *TableIVResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV: Driving Performance in Different Scenarios (fault-free)\n")
	fmt.Fprintf(&b, "%-8s %-9s %-9s %-14s %-10s %-9s %-9s\n",
		"Scenario", "Hazard", "Accident", "FollowDist(m)", "HardBrake", "minTTC(s)", "minTFCW(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %2d/%-6d %2d/%-6d %-14.2f %8.1f%% %-9.2f %-9.2f\n",
			row.Scenario, row.Hazards, row.Runs, row.Accidents, row.Runs,
			row.FollowingDistance, row.HardestBrake*100, row.MinTTC, row.MinTFCW)
	}
	return b.String()
}

// TableVRow is one scenario's minimal distance to lane lines.
type TableVRow struct {
	Scenario scenario.ID
	MinDist  float64 // min over runs of per-run min body-edge lane distance (m)
}

// TableV derives the paper's Table V from fault-free runs.
func TableV(runs []RunOutcome) []TableVRow {
	rows := make([]TableVRow, 0, len(scenario.All()))
	for _, id := range scenario.All() {
		min := math.Inf(1)
		for _, o := range FilterByScenario(runs, id) {
			if o.MinLaneLineDist < min {
				min = o.MinLaneLineDist
			}
		}
		rows = append(rows, TableVRow{Scenario: id, MinDist: min})
	}
	return rows
}

// RenderTableV formats Table V.
func RenderTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("TABLE V: Minimal Distance to Lane Lines (m)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s ", r.Scenario)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4.2f ", r.MinDist)
	}
	b.WriteString("\n")
	return b.String()
}
