package experiments

import (
	"fmt"
	"strings"

	"adasim/internal/core"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

// Series is one labelled time series of a figure.
type Series struct {
	Label  string
	Points [][2]float64 // (t, value)
}

// Figure is a regenerated paper figure as CSV-able series.
type Figure struct {
	Name   string
	Series []Series
}

// CSV renders the figure as one CSV block per series.
func (f Figure) CSV() string {
	var b strings.Builder
	for _, s := range f.Series {
		fmt.Fprintf(&b, "# %s: %s\n", f.Name, s.Label)
		b.WriteString("t,value\n")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%.2f,%.4f\n", p[0], p[1])
		}
	}
	return b.String()
}

// sampleEvery thins a trace to every n-th sample to keep CSVs small.
func sampleEvery(tr *metrics.Trace, n int) []metrics.Sample {
	if n < 1 {
		n = 1
	}
	out := make([]metrics.Sample, 0, len(tr.Samples)/n+1)
	for i := 0; i < len(tr.Samples); i += n {
		out = append(out, tr.Samples[i])
	}
	return out
}

// Figure5 reproduces Fig. 5: ego speed and distance to lane lines while
// approaching the lead vehicle, one figure per scenario, fault-free.
// Figure runs execute through the config's executor like every other
// campaign, but always bypass the outcome cache: their value is the
// recorded trace, which never travels through it.
func Figure5(cfg Config) ([]Figure, error) {
	ids := scenario.All()
	reqs := make([]RunRequest, len(ids))
	for i, id := range ids {
		opts := core.Options{
			Scenario:    scenario.DefaultSpec(id, 60),
			Seed:        cfg.BaseSeed,
			Steps:       cfg.Steps,
			RecordTrace: true,
		}
		if cfg.Modify != nil {
			cfg.Modify(&opts)
		}
		reqs[i] = RunRequest{Key: RunKey{Scenario: id, Gap: 60}, Opts: opts}
	}
	outs, err := cfg.execute(reqs)
	if err != nil {
		return nil, fmt.Errorf("figure 5: %w", err)
	}
	figs := make([]Figure, 0, len(ids))
	for i, id := range ids {
		speed := Series{Label: "ego speed (m/s)"}
		lane := Series{Label: "distance to lane lines (m)"}
		for _, s := range sampleEvery(outs[i].Trace, 10) {
			speed.Points = append(speed.Points, [2]float64{s.T, s.EgoV})
			lane.Points = append(lane.Points, [2]float64{s.T, s.LaneLineMin})
		}
		figs = append(figs, Figure{
			Name:   fmt.Sprintf("fig5-%s", id),
			Series: []Series{speed, lane},
		})
	}
	return figs, nil
}

// Figure6 reproduces Fig. 6: ego speed and relative distance (true and
// perceived) under a relative-distance fault injection, without safety
// interventions.
func Figure6(cfg Config) (Figure, error) {
	opts := core.Options{
		Scenario:    scenario.DefaultSpec(scenario.S1, 60),
		Fault:       fi.DefaultParams(fi.TargetRelDistance),
		Seed:        cfg.BaseSeed,
		Steps:       cfg.Steps,
		RecordTrace: true,
	}
	if cfg.Modify != nil {
		cfg.Modify(&opts)
	}
	outs, err := cfg.execute([]RunRequest{
		{Key: RunKey{Scenario: scenario.S1, Gap: 60}, Opts: opts},
	})
	if err != nil {
		return Figure{}, fmt.Errorf("figure 6: %w", err)
	}
	speed := Series{Label: "ego speed (m/s)"}
	trueRD := Series{Label: "true relative distance (m)"}
	seenRD := Series{Label: "perceived relative distance (m)"}
	for _, s := range sampleEvery(outs[0].Trace, 10) {
		speed.Points = append(speed.Points, [2]float64{s.T, s.EgoV})
		if s.LeadValid {
			trueRD.Points = append(trueRD.Points, [2]float64{s.T, s.LeadGap})
		}
		if s.PerceivedRD >= 0 {
			seenRD.Points = append(seenRD.Points, [2]float64{s.T, s.PerceivedRD})
		}
	}
	return Figure{Name: "fig6", Series: []Series{speed, trueRD, seenRD}}, nil
}
