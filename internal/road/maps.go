package road

import "adasim/internal/geo"

// MapKind selects one of the built-in highway maps.
type MapKind int

// Built-in maps. The paper's experiments use a dry highway map with both
// straight and curvy stretches so the ego catches the lead vehicle on each.
const (
	MapStraight MapKind = iota + 1
	MapCurvy
)

// String returns the map name.
func (k MapKind) String() string {
	switch k {
	case MapStraight:
		return "straight"
	case MapCurvy:
		return "curvy"
	default:
		return "unknown"
	}
}

// StraightSegments returns a single straight highway stretch of the given
// length.
func StraightSegments(length float64) []geo.Segment {
	return []geo.Segment{{Length: length}}
}

// CurvySegments returns a highway profile alternating straights with gentle
// arcs (radii 350-500 m), matching the high-speed-turn geometry on which
// the paper observes poor lane centering (Table V, S3).
func CurvySegments() []geo.Segment {
	return []geo.Segment{
		{Length: 400},                       // run-up straight
		{Length: 300, Curvature: 1 / 450.},  // gentle left
		{Length: 200},                       // straight
		{Length: 280, Curvature: -1 / 350.}, // tighter right
		{Length: 250},                       // straight
		{Length: 320, Curvature: 1 / 500.},  // gentle left
		{Length: 1500},                      // long exit straight
	}
}

// BuildMap constructs a 3-lane highway Road of the requested kind with the
// given friction (0 means DefaultFriction) and patch zones.
func BuildMap(kind MapKind, friction float64, patches []PatchZone) (*Road, error) {
	var segs []geo.Segment
	switch kind {
	case MapCurvy:
		segs = CurvySegments()
	default:
		segs = StraightSegments(3000)
	}
	return New(Config{
		Segments: segs,
		NumLanes: 3,
		RefLane:  1, // ego drives the middle lane
		Friction: friction,
		Patches:  patches,
	})
}
