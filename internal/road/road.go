// Package road models the highway geometry used by the simulation: a
// piecewise centreline with parallel lanes, lane lines, per-position
// curvature, surface friction, and the adversarial patch zones that
// trigger lateral (ALC) attacks.
package road

import (
	"errors"
	"fmt"
	"math"

	"adasim/internal/geo"
)

// DefaultLaneWidth is the lane width in metres (MetaDrive highway default).
const DefaultLaneWidth = 3.5

// DefaultFriction is the dry-asphalt tyre/road friction coefficient.
const DefaultFriction = 0.9

// PatchZone is a stretch of road surface carrying an adversarial patch.
// A vehicle "drives over" the patch when its arc length lies in
// [StartS, EndS] and it occupies lane Lane.
type PatchZone struct {
	StartS float64 // arc length where the patch begins (m)
	EndS   float64 // arc length where the patch ends (m)
	Lane   int     // lane index the patch is painted on
}

// Contains reports whether the Frenet position (s, lane) is on the patch.
func (p PatchZone) Contains(s float64, lane int) bool {
	return lane == p.Lane && s >= p.StartS && s <= p.EndS
}

// Road is a multi-lane highway. Lanes are indexed from 0 (rightmost) to
// NumLanes-1 (leftmost); lateral offsets are measured from the centre of
// the reference lane (RefLane), positive to the left.
type Road struct {
	curve     *geo.Curve
	numLanes  int
	refLane   int
	laneWidth float64
	friction  float64
	patches   []PatchZone
}

// Config describes a road to build.
type Config struct {
	Segments  []geo.Segment // centreline shape of the reference lane
	NumLanes  int           // total lanes; default 3
	RefLane   int           // index of the lane the centreline follows; default 0
	LaneWidth float64       // metres; default DefaultLaneWidth
	Friction  float64       // road/tyre friction coefficient; default DefaultFriction
	Patches   []PatchZone   // adversarial patch zones
}

// New builds a Road from cfg.
func New(cfg Config) (*Road, error) {
	if len(cfg.Segments) == 0 {
		return nil, errors.New("road: config needs at least one segment")
	}
	curve, err := geo.NewCurve(cfg.Segments...)
	if err != nil {
		return nil, fmt.Errorf("road: %w", err)
	}
	if cfg.NumLanes == 0 {
		cfg.NumLanes = 3
	}
	if cfg.NumLanes < 1 {
		return nil, fmt.Errorf("road: NumLanes %d must be >= 1", cfg.NumLanes)
	}
	if cfg.RefLane < 0 || cfg.RefLane >= cfg.NumLanes {
		return nil, fmt.Errorf("road: RefLane %d out of range [0,%d)", cfg.RefLane, cfg.NumLanes)
	}
	if cfg.LaneWidth == 0 {
		cfg.LaneWidth = DefaultLaneWidth
	}
	if cfg.LaneWidth <= 0 {
		return nil, fmt.Errorf("road: LaneWidth %v must be positive", cfg.LaneWidth)
	}
	if cfg.Friction == 0 {
		cfg.Friction = DefaultFriction
	}
	if cfg.Friction <= 0 || cfg.Friction > 2 {
		return nil, fmt.Errorf("road: Friction %v out of plausible range (0,2]", cfg.Friction)
	}
	for i, p := range cfg.Patches {
		if p.EndS < p.StartS {
			return nil, fmt.Errorf("road: patch %d has EndS < StartS", i)
		}
		if p.Lane < 0 || p.Lane >= cfg.NumLanes {
			return nil, fmt.Errorf("road: patch %d lane %d out of range", i, p.Lane)
		}
	}
	patches := make([]PatchZone, len(cfg.Patches))
	copy(patches, cfg.Patches)
	return &Road{
		curve:     curve,
		numLanes:  cfg.NumLanes,
		refLane:   cfg.RefLane,
		laneWidth: cfg.LaneWidth,
		friction:  cfg.Friction,
		patches:   patches,
	}, nil
}

// Length returns the total arc length of the road.
func (r *Road) Length() float64 { return r.curve.Length() }

// NumLanes returns the number of lanes.
func (r *Road) NumLanes() int { return r.numLanes }

// LaneWidth returns the lane width in metres.
func (r *Road) LaneWidth() float64 { return r.laneWidth }

// Friction returns the road/tyre friction coefficient.
func (r *Road) Friction() float64 { return r.friction }

// SetFriction overrides the friction coefficient, used by the weather
// experiments (Table VIII). The value must be positive.
func (r *Road) SetFriction(mu float64) error {
	if mu <= 0 {
		return fmt.Errorf("road: friction %v must be positive", mu)
	}
	r.friction = mu
	return nil
}

// CurvatureAt returns the reference-lane centreline curvature at arc
// length s.
func (r *Road) CurvatureAt(s float64) float64 { return r.curve.CurvatureAt(s) }

// PoseAt returns the reference-lane centreline pose at arc length s.
func (r *Road) PoseAt(s float64) geo.Pose { return r.curve.PoseAt(s) }

// LaneCenterOffset returns the lateral offset of the centre of lane from
// the reference lane centreline.
func (r *Road) LaneCenterOffset(lane int) float64 {
	return float64(lane-r.refLane) * r.laneWidth
}

// LaneForOffset returns the index of the lane containing lateral offset d.
// Offsets beyond the outermost lane edges are clamped to the edge lanes.
func (r *Road) LaneForOffset(d float64) int {
	lane := r.refLane + int(math.Round(d/r.laneWidth))
	if lane < 0 {
		lane = 0
	}
	if lane >= r.numLanes {
		lane = r.numLanes - 1
	}
	return lane
}

// LaneLineDistances returns the distance from lateral offset d to the left
// and right lane lines of the lane containing d. Both are positive when the
// point is inside the lane.
func (r *Road) LaneLineDistances(d float64) (left, right float64) {
	lane := r.LaneForOffset(d)
	c := r.LaneCenterOffset(lane)
	left = c + r.laneWidth/2 - d
	right = d - (c - r.laneWidth/2)
	return left, right
}

// InsideRoad reports whether lateral offset d lies within the paved
// roadway (all lanes plus a small shoulder).
func (r *Road) InsideRoad(d float64) bool {
	const shoulder = 0.3
	lo := r.LaneCenterOffset(0) - r.laneWidth/2 - shoulder
	hi := r.LaneCenterOffset(r.numLanes-1) + r.laneWidth/2 + shoulder
	return d >= lo && d <= hi
}

// OnPatch reports whether Frenet position (s, d) lies on any adversarial
// patch zone.
func (r *Road) OnPatch(s, d float64) bool {
	lane := r.LaneForOffset(d)
	for _, p := range r.patches {
		if p.Contains(s, lane) {
			return true
		}
	}
	return false
}

// Patches returns a copy of the configured patch zones.
func (r *Road) Patches() []PatchZone {
	out := make([]PatchZone, len(r.patches))
	copy(out, r.patches)
	return out
}

// ToCartesian converts Frenet (s, d) into a Cartesian position.
func (r *Road) ToCartesian(s, d float64) geo.Vec2 { return r.curve.ToCartesian(s, d) }

// Project converts a Cartesian point into Frenet (s, d), optionally using
// hint as the previously known arc length.
func (r *Road) Project(p geo.Vec2, hint float64) (s, d float64) {
	return r.curve.Project(p, geo.ProjectOptions{Hint: hint})
}
