package road

import (
	"math"
	"testing"
	"testing/quick"

	"adasim/internal/geo"
)

func testRoad(t *testing.T) *Road {
	t.Helper()
	r, err := New(Config{
		Segments: []geo.Segment{{Length: 1000}},
		NumLanes: 3,
		RefLane:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewDefaults(t *testing.T) {
	r, err := New(Config{Segments: []geo.Segment{{Length: 100}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLanes() != 3 {
		t.Errorf("NumLanes = %d", r.NumLanes())
	}
	if r.LaneWidth() != DefaultLaneWidth {
		t.Errorf("LaneWidth = %v", r.LaneWidth())
	}
	if r.Friction() != DefaultFriction {
		t.Errorf("Friction = %v", r.Friction())
	}
}

func TestNewValidation(t *testing.T) {
	base := []geo.Segment{{Length: 100}}
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no segments", Config{}},
		{"bad lanes", Config{Segments: base, NumLanes: -1}},
		{"bad ref lane", Config{Segments: base, NumLanes: 2, RefLane: 5}},
		{"bad lane width", Config{Segments: base, LaneWidth: -1}},
		{"bad friction", Config{Segments: base, Friction: -0.5}},
		{"huge friction", Config{Segments: base, Friction: 3}},
		{"bad patch order", Config{Segments: base, Patches: []PatchZone{{StartS: 10, EndS: 5}}}},
		{"bad patch lane", Config{Segments: base, Patches: []PatchZone{{StartS: 1, EndS: 2, Lane: 9}}}},
	}
	for _, tt := range tests {
		if _, err := New(tt.cfg); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestLaneCenterOffset(t *testing.T) {
	r := testRoad(t)
	if got := r.LaneCenterOffset(1); got != 0 {
		t.Errorf("ref lane offset = %v", got)
	}
	if got := r.LaneCenterOffset(0); got != -DefaultLaneWidth {
		t.Errorf("lane 0 offset = %v", got)
	}
	if got := r.LaneCenterOffset(2); got != DefaultLaneWidth {
		t.Errorf("lane 2 offset = %v", got)
	}
}

func TestLaneForOffset(t *testing.T) {
	r := testRoad(t)
	tests := []struct {
		d    float64
		want int
	}{
		{0, 1},
		{1.0, 1},
		{-1.0, 1},
		{2.5, 2},
		{-2.5, 0},
		{100, 2},  // clamped to leftmost
		{-100, 0}, // clamped to rightmost
	}
	for _, tt := range tests {
		if got := r.LaneForOffset(tt.d); got != tt.want {
			t.Errorf("LaneForOffset(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestLaneLineDistances(t *testing.T) {
	r := testRoad(t)
	left, right := r.LaneLineDistances(0)
	if !nearly(left, 1.75) || !nearly(right, 1.75) {
		t.Errorf("centered distances = %v, %v", left, right)
	}
	left, right = r.LaneLineDistances(0.5)
	if !nearly(left, 1.25) || !nearly(right, 2.25) {
		t.Errorf("offset distances = %v, %v", left, right)
	}
}

func TestLaneLineDistancesProperty(t *testing.T) {
	r := testRoad(t)
	f := func(d float64) bool {
		if math.IsNaN(d) || math.Abs(d) > 5 {
			return true
		}
		left, right := r.LaneLineDistances(d)
		// Left + right always equals the lane width.
		return nearly(left+right, r.LaneWidth())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsideRoad(t *testing.T) {
	r := testRoad(t)
	if !r.InsideRoad(0) || !r.InsideRoad(5.0) || !r.InsideRoad(-5.0) {
		t.Error("expected on-road positions inside")
	}
	if r.InsideRoad(6.0) || r.InsideRoad(-6.0) {
		t.Error("expected off-road positions outside")
	}
}

func TestSetFriction(t *testing.T) {
	r := testRoad(t)
	if err := r.SetFriction(0.45); err != nil {
		t.Fatal(err)
	}
	if r.Friction() != 0.45 {
		t.Errorf("friction = %v", r.Friction())
	}
	if err := r.SetFriction(-1); err == nil {
		t.Error("negative friction should fail")
	}
}

func TestPatchZones(t *testing.T) {
	r, err := New(Config{
		Segments: []geo.Segment{{Length: 1000}},
		NumLanes: 3,
		RefLane:  1,
		Patches:  []PatchZone{{StartS: 100, EndS: 110, Lane: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		s, d float64
		want bool
	}{
		{105, 0, true},    // on patch, ego lane
		{105, 3.5, false}, // adjacent lane
		{99, 0, false},    // before patch
		{111, 0, false},   // after patch
		{100, 0, true},    // boundary inclusive
		{110, 0, true},    // boundary inclusive
	}
	for _, tt := range tests {
		if got := r.OnPatch(tt.s, tt.d); got != tt.want {
			t.Errorf("OnPatch(%v, %v) = %v, want %v", tt.s, tt.d, got, tt.want)
		}
	}
	if n := len(r.Patches()); n != 1 {
		t.Errorf("Patches() len = %d", n)
	}
}

func TestBuildMap(t *testing.T) {
	for _, kind := range []MapKind{MapStraight, MapCurvy} {
		r, err := BuildMap(kind, 0, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if r.Length() < 2000 {
			t.Errorf("%v length = %v, too short for experiments", kind, r.Length())
		}
		if r.NumLanes() != 3 || r.Friction() != DefaultFriction {
			t.Errorf("%v unexpected defaults", kind)
		}
	}
	if MapStraight.String() != "straight" || MapCurvy.String() != "curvy" {
		t.Error("map kind names wrong")
	}
}

func TestCurvyMapHasCurves(t *testing.T) {
	r, err := BuildMap(MapCurvy, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawLeft, sawRight bool
	for s := 0.0; s < r.Length(); s += 10 {
		k := r.CurvatureAt(s)
		if k > 0 {
			sawLeft = true
		}
		if k < 0 {
			sawRight = true
		}
	}
	if !sawLeft || !sawRight {
		t.Error("curvy map should have both left and right curves")
	}
}

func TestFrenetCartesianConsistency(t *testing.T) {
	r, err := BuildMap(MapCurvy, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{10, 450, 800, 1500} {
		for _, d := range []float64{-3, 0, 2.5} {
			p := r.ToCartesian(s, d)
			s2, d2 := r.Project(p, s)
			if !nearly2(s2, s, 0.05) || !nearly2(d2, d, 0.05) {
				t.Errorf("round trip (%v,%v) -> (%v,%v)", s, d, s2, d2)
			}
		}
	}
}

func nearly(a, b float64) bool       { return math.Abs(a-b) < 1e-9 }
func nearly2(a, b, eps float64) bool { return math.Abs(a-b) < eps }
