package world

import (
	"math"
	"testing"

	"adasim/internal/road"
	"adasim/internal/vehicle"
)

type constantCtrl struct {
	cmd vehicle.Command
	n   int
}

func (c *constantCtrl) Command(t float64, self vehicle.State, w *World) vehicle.Command {
	c.n++
	return c.cmd
}

func testWorld(t *testing.T, actors ...*Actor) *World {
	t.Helper()
	r, err := road.BuildMap(road.MapStraight, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	egoDyn, err := vehicle.New(vehicle.DefaultParams(), vehicle.State{S: 30, V: 20})
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(Config{
		Road:   r,
		Ego:    &Actor{Name: "ego", Dyn: egoDyn},
		Actors: actors,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func makeActor(t *testing.T, name string, st vehicle.State, ctrl Controller) *Actor {
	t.Helper()
	dyn, err := vehicle.New(vehicle.DefaultParams(), st)
	if err != nil {
		t.Fatal(err)
	}
	return &Actor{Name: name, Dyn: dyn, Ctrl: ctrl}
}

func TestNewValidation(t *testing.T) {
	r, err := road.BuildMap(road.MapStraight, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	egoDyn, _ := vehicle.New(vehicle.DefaultParams(), vehicle.State{V: 10})
	ego := &Actor{Name: "ego", Dyn: egoDyn}
	if _, err := New(Config{Ego: ego}); err == nil {
		t.Error("missing road should fail")
	}
	if _, err := New(Config{Road: r}); err == nil {
		t.Error("missing ego should fail")
	}
	if _, err := New(Config{Road: r, Ego: ego, Step: -1}); err == nil {
		t.Error("negative step should fail")
	}
	noCtrl := &Actor{Name: "x", Dyn: egoDyn}
	if _, err := New(Config{Road: r, Ego: ego, Actors: []*Actor{noCtrl}}); err == nil {
		t.Error("actor without controller should fail")
	}
}

func TestStepAdvancesTimeAndActors(t *testing.T) {
	ctrl := &constantCtrl{}
	lead := makeActor(t, "lead", vehicle.State{S: 100, V: 15}, ctrl)
	w := testWorld(t, lead)
	if w.StepSize() != DefaultStep {
		t.Errorf("step size = %v", w.StepSize())
	}
	for i := 0; i < 100; i++ {
		w.Step(vehicle.Command{})
	}
	if !near(w.Time(), 1.0, 1e-9) {
		t.Errorf("time = %v", w.Time())
	}
	if ctrl.n != 100 {
		t.Errorf("controller called %d times", ctrl.n)
	}
	if lead.State().S <= 100 {
		t.Error("lead should have moved forward")
	}
}

func TestLeadSelection(t *testing.T) {
	behind := makeActor(t, "behind", vehicle.State{S: 10, V: 15}, &constantCtrl{})
	near_ := makeActor(t, "near", vehicle.State{S: 80, V: 15}, &constantCtrl{})
	far := makeActor(t, "far", vehicle.State{S: 200, V: 15}, &constantCtrl{})
	otherLane := makeActor(t, "side", vehicle.State{S: 60, D: 3.5, V: 15}, &constantCtrl{})
	w := testWorld(t, behind, far, near_, otherLane)

	lead, gap, ok := w.Lead()
	if !ok {
		t.Fatal("expected a lead")
	}
	if lead.Name != "near" {
		t.Errorf("lead = %s, want near", lead.Name)
	}
	wantGap := (80.0 - 30.0) - vehicle.DefaultParams().Length
	if !near(gap, wantGap, 1e-9) {
		t.Errorf("gap = %v, want %v", gap, wantGap)
	}
}

func TestLeadWithinWiderCone(t *testing.T) {
	offset := makeActor(t, "offset", vehicle.State{S: 70, D: 2.8, V: 15}, &constantCtrl{})
	w := testWorld(t, offset)
	if _, _, ok := w.Lead(); ok {
		t.Error("camera cone should not see a 2.8 m offset vehicle")
	}
	if _, _, ok := w.LeadWithin(1.1); !ok {
		t.Error("radar cone should see it")
	}
}

func TestNoLead(t *testing.T) {
	w := testWorld(t)
	if _, _, ok := w.Lead(); ok {
		t.Error("expected no lead")
	}
}

func TestCollisionDetection(t *testing.T) {
	overlapping := makeActor(t, "x", vehicle.State{S: 33, V: 0}, &constantCtrl{})
	w := testWorld(t, overlapping)
	if !w.CollisionWith(overlapping) {
		t.Error("expected collision with overlapping actor")
	}
	if w.AnyCollision() != overlapping {
		t.Error("AnyCollision should find it")
	}
	farAway := makeActor(t, "far", vehicle.State{S: 100, V: 0}, &constantCtrl{})
	w2 := testWorld(t, farAway)
	if w2.AnyCollision() != nil {
		t.Error("expected no collision")
	}
	sideBySide := makeActor(t, "side", vehicle.State{S: 30, D: 3.5, V: 0}, &constantCtrl{})
	w3 := testWorld(t, sideBySide)
	if w3.AnyCollision() != nil {
		t.Error("adjacent lane should not collide")
	}
}

func TestEgoOffRoad(t *testing.T) {
	w := testWorld(t)
	if w.EgoOffRoad() {
		t.Error("centered ego should be on road")
	}
	st := w.Ego().Dyn.State()
	st.D = 6.5
	w.Ego().Dyn.SetState(st)
	if !w.EgoOffRoad() {
		t.Error("ego at 6.5 m should be off road")
	}
}

func TestEgoOutOfLane(t *testing.T) {
	w := testWorld(t)
	if w.EgoOutOfLane(0) {
		t.Error("centered ego should be in lane")
	}
	st := w.Ego().Dyn.State()
	st.D = 1.2 // body edge at 1.2+0.925 > 1.75
	w.Ego().Dyn.SetState(st)
	if !w.EgoOutOfLane(0) {
		t.Error("offset ego should be crossing the line")
	}
}

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
