// Package world hosts the multi-vehicle closed-loop simulation: an ego
// vehicle driven by an external controller, scripted traffic actors, and
// per-step collision / lane-departure detection. It is the MetaDrive
// substitute described in DESIGN.md.
package world

import (
	"errors"
	"fmt"
	"math"

	"adasim/internal/road"
	"adasim/internal/vehicle"
)

// DefaultStep is the simulation step used throughout the paper's
// experiments: 10 ms (100 Hz control frequency).
const DefaultStep = 0.01

// Controller produces a command for a scripted actor each step.
type Controller interface {
	// Command returns the actuator command for the actor at simulation
	// time t given its own state and a read-only view of the world.
	Command(t float64, self vehicle.State, w *World) vehicle.Command
}

// Actor is one vehicle in the world.
type Actor struct {
	Name string
	Dyn  *vehicle.Dynamics
	Ctrl Controller // nil for the ego vehicle (commanded externally)
}

// State returns the actor's current state.
func (a *Actor) State() vehicle.State { return a.Dyn.State() }

// World is the physical simulation environment.
type World struct {
	road   *road.Road
	ego    *Actor
	actors []*Actor
	time   float64
	step   float64
}

// Config describes a world to build.
type Config struct {
	Road *road.Road
	Ego  *Actor
	// Actors are the scripted traffic vehicles (lead vehicles, cut-in
	// vehicles, ...). Each must have a Controller.
	Actors []*Actor
	// Step is the integration step in seconds; default DefaultStep.
	Step float64
}

// New builds a World.
func New(cfg Config) (*World, error) {
	w := &World{}
	if err := w.Reset(cfg); err != nil {
		return nil, err
	}
	return w, nil
}

// Reset reinitialises the world in place for a new run at time zero,
// reusing the actors slice. The result is indistinguishable from a fresh
// New(cfg).
func (w *World) Reset(cfg Config) error {
	if cfg.Road == nil {
		return errors.New("world: Road is required")
	}
	if cfg.Ego == nil || cfg.Ego.Dyn == nil {
		return errors.New("world: Ego with dynamics is required")
	}
	for i, a := range cfg.Actors {
		if a == nil || a.Dyn == nil {
			return fmt.Errorf("world: actor %d missing dynamics", i)
		}
		if a.Ctrl == nil {
			return fmt.Errorf("world: actor %d (%s) missing controller", i, a.Name)
		}
	}
	if cfg.Step == 0 {
		cfg.Step = DefaultStep
	}
	if cfg.Step <= 0 {
		return fmt.Errorf("world: step %v must be positive", cfg.Step)
	}
	w.road = cfg.Road
	w.ego = cfg.Ego
	w.actors = append(w.actors[:0], cfg.Actors...)
	w.time = 0
	w.step = cfg.Step
	return nil
}

// Road returns the road geometry.
func (w *World) Road() *road.Road { return w.road }

// Ego returns the ego actor.
func (w *World) Ego() *Actor { return w.ego }

// Actors returns the scripted actors (callers must not mutate the slice).
func (w *World) Actors() []*Actor { return w.actors }

// Time returns the current simulation time in seconds.
func (w *World) Time() float64 { return w.time }

// StepSize returns the integration step in seconds.
func (w *World) StepSize() float64 { return w.step }

// Step advances the world by one step: the ego executes egoCmd and each
// scripted actor executes its controller's command.
func (w *World) Step(egoCmd vehicle.Command) {
	dt := w.step
	mu := w.road.Friction()

	es := w.ego.Dyn.State()
	w.ego.Dyn.Step(egoCmd, vehicle.StepInput{
		DT:            dt,
		RoadCurvature: w.road.CurvatureAt(es.S),
		Friction:      mu,
	})
	for _, a := range w.actors {
		st := a.Dyn.State()
		cmd := a.Ctrl.Command(w.time, st, w)
		a.Dyn.Step(cmd, vehicle.StepInput{
			DT:            dt,
			RoadCurvature: w.road.CurvatureAt(st.S),
			Friction:      mu,
		})
	}
	w.time += dt
}

// Lead returns the nearest actor ahead of the ego in the ego's lane
// (within 0.6 lane widths laterally, the camera model's acceptance) and
// the bumper-to-bumper gap to it. ok is false when no actor is ahead in
// lane.
func (w *World) Lead() (lead *Actor, gap float64, ok bool) {
	return w.LeadWithin(0.6)
}

// LeadWithin is Lead with an explicit lateral acceptance expressed in lane
// widths; an independent AEBS radar uses a wider cone than the camera.
func (w *World) LeadWithin(laneFrac float64) (lead *Actor, gap float64, ok bool) {
	es := w.ego.Dyn.State()
	ep := w.ego.Dyn.Params()
	best := math.Inf(1)
	for _, a := range w.actors {
		as := a.Dyn.State()
		ds := as.S - es.S
		if ds <= 0 {
			continue
		}
		if math.Abs(as.D-es.D) > w.road.LaneWidth()*laneFrac {
			continue
		}
		g := ds - (ep.Length+a.Dyn.Params().Length)/2
		if g < best {
			best = g
			lead = a
		}
	}
	if lead == nil {
		return nil, 0, false
	}
	return lead, best, true
}

// CollisionWith reports whether the ego's footprint overlaps actor a,
// using Frenet-aligned bounding boxes (adequate for highway geometry).
func (w *World) CollisionWith(a *Actor) bool {
	es, as := w.ego.Dyn.State(), a.Dyn.State()
	ep, ap := w.ego.Dyn.Params(), a.Dyn.Params()
	return math.Abs(es.S-as.S) < (ep.Length+ap.Length)/2 &&
		math.Abs(es.D-as.D) < (ep.Width+ap.Width)/2
}

// AnyCollision returns the first actor the ego currently collides with,
// or nil.
func (w *World) AnyCollision() *Actor {
	for _, a := range w.actors {
		if w.CollisionWith(a) {
			return a
		}
	}
	return nil
}

// EgoOffRoad reports whether any part of the ego body has left the paved
// roadway.
func (w *World) EgoOffRoad() bool {
	es := w.ego.Dyn.State()
	half := w.ego.Dyn.Params().Width / 2
	return !w.road.InsideRoad(es.D-half) || !w.road.InsideRoad(es.D+half)
}

// EgoOutOfLane reports whether the ego's body crosses either lane line of
// its current lane by more than tolerance metres.
func (w *World) EgoOutOfLane(tolerance float64) bool {
	es := w.ego.Dyn.State()
	half := w.ego.Dyn.Params().Width / 2
	left, right := w.road.LaneLineDistances(es.D)
	return left < half-tolerance || right < half-tolerance
}
