// Package mlmit implements the paper's ML-based hazard-mitigation baseline
// (Section IV-D, Algorithm 1): a stacked-LSTM regressor predicts the
// expected gas (acceleration) and steering (curvature) outputs from
// fault-free sensor data; a CUSUM-style accumulator compares the ML
// predictions with the OpenPilot controller outputs and switches the
// actuator to the ML outputs while in recovery mode.
package mlmit

import (
	"fmt"
	"math"

	"adasim/internal/nn"
	"adasim/internal/vehicle"
)

// HistorySteps is the input window length: 20 control cycles = 0.2 s at
// the 100 Hz control frequency, per the paper.
const HistorySteps = 20

// Frame is one step of fault-free model input: the ego state plus the
// control outputs of the previous cycle.
type Frame struct {
	EgoSpeed      float64 // m/s (independent/redundant sensor)
	LeadDistance  float64 // true relative distance (m); detection range when no lead
	LaneLineLeft  float64 // true distance to left lane line (m)
	LaneLineRight float64 // true distance to right lane line (m)
	PrevAccel     float64 // previous cycle's executed acceleration (m/s^2)
	PrevCurvature float64 // previous cycle's executed curvature (1/m)
}

// featureScale normalises each feature to roughly unit range.
var featureScale = [6]float64{30, 80, 2, 2, 4, 0.05}

// outputScale normalises the two regression targets (accel, curvature).
var outputScale = [2]float64{4, 0.05}

// FeatureDim is the model input width.
const FeatureDim = 6

// OutputDim is the model output width (gas, steering).
const OutputDim = 2

// Vector returns the scaled feature vector for the frame.
func (f Frame) Vector() []float64 {
	v := make([]float64, FeatureDim)
	f.VectorInto(v)
	return v
}

// VectorInto writes the scaled feature vector into dst, which must have
// length FeatureDim. The allocation-free form of Vector.
func (f Frame) VectorInto(dst []float64) {
	dst[0] = f.EgoSpeed / featureScale[0]
	dst[1] = f.LeadDistance / featureScale[1]
	dst[2] = f.LaneLineLeft / featureScale[2]
	dst[3] = f.LaneLineRight / featureScale[3]
	dst[4] = f.PrevAccel / featureScale[4]
	dst[5] = f.PrevCurvature / featureScale[5]
}

// VectorInto32 writes the scaled feature vector as float32 — the input
// form of the batched inference path. Scaling happens in float64 and
// rounds once, so the float32 features are a pure function of the frame.
func (f Frame) VectorInto32(dst []float32) {
	dst[0] = float32(f.EgoSpeed / featureScale[0])
	dst[1] = float32(f.LeadDistance / featureScale[1])
	dst[2] = float32(f.LaneLineLeft / featureScale[2])
	dst[3] = float32(f.LaneLineRight / featureScale[3])
	dst[4] = float32(f.PrevAccel / featureScale[4])
	dst[5] = float32(f.PrevCurvature / featureScale[5])
}

// ScaleTarget converts a command into the scaled regression target.
func ScaleTarget(cmd vehicle.Command) []float64 {
	return []float64{cmd.Accel / outputScale[0], cmd.Curvature / outputScale[1]}
}

// UnscaleOutput converts a scaled model output back into a command.
func UnscaleOutput(out []float64) vehicle.Command {
	return vehicle.Command{
		Accel:     out[0] * outputScale[0],
		Curvature: out[1] * outputScale[1],
	}
}

// UnscaleOutput32 converts a scaled float32 model output back into a
// command, widening before the unscale multiply.
func UnscaleOutput32(out []float32) vehicle.Command {
	return vehicle.Command{
		Accel:     float64(out[0]) * outputScale[0],
		Curvature: float64(out[1]) * outputScale[1],
	}
}

// Config holds the Algorithm 1 parameters.
type Config struct {
	// Threshold is tau: recovery mode activates when the accumulated
	// error S exceeds it.
	Threshold float64
	// Bias is b(t) > 0: the per-step bias keeping S at zero under
	// normal conditions, and the exit criterion while in recovery.
	Bias float64
}

// DefaultConfig returns the detector parameters used in the experiments.
func DefaultConfig() Config {
	return Config{Threshold: 2.0, Bias: 0.25}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Threshold <= 0 || c.Bias <= 0 {
		return fmt.Errorf("mlmit: Threshold and Bias must be positive: %+v", c)
	}
	return nil
}

// Mitigator is a stateful Algorithm 1 instance. It owns preallocated
// history and inference scratch buffers, so Update performs zero heap
// allocations in steady state. Predictions run on the batched float32
// inference path: solo through its own batch-of-one scratch, or — when
// a Hub is attached — batched with other in-process runs sharing the
// network. The two are bit-identical (see nn.PredictBatchInto), so
// attaching a Hub never changes a run's outputs.
type Mitigator struct {
	cfg Config
	net *nn.Network

	// hist is a ring of the last HistorySteps scaled feature vectors
	// (histRows are reused row views into one flat backing array); seq is
	// the window reassembled oldest-first for each prediction.
	histRows [HistorySteps][]float32
	seq      [HistorySteps][]float32
	head     int // next ring slot to overwrite
	count    int // frames recorded, saturating at HistorySteps

	scratch *nn.InferScratch32

	hub     *Hub
	group   *hubGroup
	entered bool
	out     []float32     // hub prediction result buffer
	done    chan struct{} // hub completion signal, reused every step

	s        float64 // accumulated error S(t)
	recovery bool

	firstRecoveryAt float64
	recoverySteps   int
}

// New constructs a Mitigator around a trained network. The network must
// have input width FeatureDim and output width OutputDim.
func New(cfg Config, net *nn.Network) (*Mitigator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("mlmit: network is required")
	}
	m := &Mitigator{
		cfg:             cfg,
		net:             net,
		scratch:         net.NewInferScratch32(1),
		out:             make([]float32, OutputDim),
		done:            make(chan struct{}, 1),
		firstRecoveryAt: -1,
	}
	flat := make([]float32, HistorySteps*FeatureDim)
	for i := range m.histRows {
		m.histRows[i] = flat[i*FeatureDim : (i+1)*FeatureDim]
	}
	return m, nil
}

// AttachHub points the Mitigator at a shared inference batcher (nil
// detaches). Call between runs, not mid-run.
func (m *Mitigator) AttachHub(h *Hub) {
	m.EndRun()
	m.hub = h
}

// EndRun releases the Mitigator's batch-group membership so peers stop
// waiting for it. The platform calls it when a run finalizes; it is
// idempotent and a no-op without a hub.
func (m *Mitigator) EndRun() {
	if m.entered {
		m.entered = false
		g := m.group
		m.group = nil
		g.leave()
	}
}

// Net returns the wrapped network.
func (m *Mitigator) Net() *nn.Network { return m.net }

// Reset clears the detector state and the input history so the Mitigator
// can be reused for a new run, keeping the network, the history ring, and
// the inference scratch buffers. cfg replaces the detector parameters.
// The scratch's cached transposed weights are refreshed from the network,
// so a Reset mitigator stays correct even if the network was retrained in
// place since the last run.
func (m *Mitigator) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.EndRun()
	m.cfg = cfg
	m.scratch.Refresh(m.net)
	m.head = 0
	m.count = 0
	m.s = 0
	m.recovery = false
	m.firstRecoveryAt = -1
	m.recoverySteps = 0
	return nil
}

// Config returns the detector parameters.
func (m *Mitigator) Config() Config { return m.cfg }

// InRecovery reports whether recovery mode is active.
func (m *Mitigator) InRecovery() bool { return m.recovery }

// S returns the current accumulated error.
func (m *Mitigator) S() float64 { return m.s }

// FirstRecoveryAt returns when recovery mode first engaged, or -1.
func (m *Mitigator) FirstRecoveryAt() float64 { return m.firstRecoveryAt }

// RecoverySteps returns how many steps have executed ML outputs.
func (m *Mitigator) RecoverySteps() int { return m.recoverySteps }

// Update processes one control cycle at simulation time t: frame is the
// fault-free sensor input, yOP the OpenPilot controller output. It
// returns the command to execute and whether the ML output was selected.
func (m *Mitigator) Update(t float64, frame Frame, yOP vehicle.Command) (vehicle.Command, bool) {
	frame.VectorInto32(m.histRows[m.head])
	m.head = (m.head + 1) % HistorySteps
	if m.count < HistorySteps {
		m.count++
	}
	if m.count < HistorySteps {
		return yOP, false // not enough history yet
	}
	// Assemble the window oldest-first: once the ring is full, the oldest
	// frame sits at head (the slot about to be overwritten next).
	for i := range m.seq {
		m.seq[i] = m.histRows[(m.head+i)%HistorySteps]
	}

	var out []float32
	if m.hub != nil {
		if !m.entered {
			m.group = m.hub.enter(m.net)
			m.entered = true
		}
		m.group.predict(m.seq[:], m.out, m.done)
		out = m.out
	} else {
		out = m.net.PredictInto32(m.seq[:], m.scratch)
	}
	yML := UnscaleOutput32(out)
	delta := m.delta(yML, yOP)

	// S(t+1) = max(0, S(t) + delta - b), kept non-negative.
	m.s = math.Max(0, m.s+delta-m.cfg.Bias)
	if m.s > m.cfg.Threshold {
		if !m.recovery && m.firstRecoveryAt < 0 {
			m.firstRecoveryAt = t
		}
		m.recovery = true
	}

	if m.recovery {
		if delta <= m.cfg.Bias {
			m.recovery = false
			m.s = 0
			return yOP, false
		}
		m.recoverySteps++
		return yML, true
	}
	return yOP, false
}

// delta is the scaled prediction discrepancy |yML - yOP| combining both
// control dimensions.
func (m *Mitigator) delta(yML, yOP vehicle.Command) float64 {
	da := math.Abs(yML.Accel-yOP.Accel) / outputScale[0]
	dk := math.Abs(yML.Curvature-yOP.Curvature) / outputScale[1]
	return da + dk
}
