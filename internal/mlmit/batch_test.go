package mlmit

import (
	"sync"
	"testing"
	"time"

	"adasim/internal/nn"
	"adasim/internal/vehicle"
)

// runSteps drives a mitigator through n deterministic steps (offset
// decorrelates the per-member frame streams) and returns the executed
// commands and active flags.
func runSteps(m *Mitigator, n, offset int) ([]vehicle.Command, []bool) {
	cmds := make([]vehicle.Command, n)
	actives := make([]bool, n)
	for i := 0; i < n; i++ {
		yOP := vehicle.Command{Accel: 1.5, Curvature: 0.002}
		cmds[i], actives[i] = m.Update(float64(i)*0.01, varyingFrame(i+offset), yOP)
	}
	return cmds, actives
}

// TestHubMatchesSolo pins the core batching contract: a mitigator
// routed through a hub produces bit-identical outputs to one running
// the solo float32 path, step for step.
func TestHubMatchesSolo(t *testing.T) {
	net := tinyNet(t)
	cfg := Config{Threshold: 0.5, Bias: 0.1}

	solo, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	hubbed, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	hubbed.AttachHub(NewHub(4, 0))

	const steps = 300
	wantCmds, wantActive := runSteps(solo, steps, 0)
	gotCmds, gotActive := runSteps(hubbed, steps, 0)
	for i := range wantCmds {
		if wantCmds[i] != gotCmds[i] || wantActive[i] != gotActive[i] {
			t.Fatalf("step %d: hub (%v,%v) != solo (%v,%v)",
				i, gotCmds[i], gotActive[i], wantCmds[i], wantActive[i])
		}
	}
	hubbed.EndRun()
}

// stepBarrier is a cyclic barrier that keeps the concurrent test's
// members in per-step lockstep. Without it, a tiny network on a
// single-core box lets each goroutine finish its whole run inside one
// scheduling quantum and nothing ever coalesces.
type stepBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newStepBarrier(n int) *stepBarrier {
	b := &stepBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *stepBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// TestHubConcurrentMembersMatchSolo runs several mitigators through one
// hub concurrently — so predictions actually coalesce into fused
// batches — and checks every member's command stream is bit-identical
// to its solo reference. This is the same-seed byte-identity guarantee
// the service relies on: batch composition is timing-dependent, results
// must not be.
func TestHubConcurrentMembersMatchSolo(t *testing.T) {
	net := tinyNet(t)
	cfg := Config{Threshold: 0.5, Bias: 0.1}
	const members = 4
	const steps = 400

	// Solo references, one frame stream per member.
	want := make([][]vehicle.Command, members)
	for w := 0; w < members; w++ {
		m, err := New(cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		want[w], _ = runSteps(m, steps, w*1000)
	}

	hub := NewHub(members, 5*time.Millisecond)
	var obsMu sync.Mutex
	var batches []int
	hub.SetObserver(func(batch int, d time.Duration) {
		obsMu.Lock()
		batches = append(batches, batch)
		obsMu.Unlock()
	})

	got := make([][]vehicle.Command, members)
	bar := newStepBarrier(members)
	var wg sync.WaitGroup
	for w := 0; w < members; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, err := New(cfg, net)
			if err != nil {
				t.Error(err)
				return
			}
			m.AttachHub(hub)
			cmds := make([]vehicle.Command, steps)
			for i := 0; i < steps; i++ {
				bar.wait()
				yOP := vehicle.Command{Accel: 1.5, Curvature: 0.002}
				cmds[i], _ = m.Update(float64(i)*0.01, varyingFrame(i+w*1000), yOP)
			}
			got[w] = cmds
			m.EndRun()
		}(w)
	}
	wg.Wait()

	for w := range want {
		for i := range want[w] {
			if want[w][i] != got[w][i] {
				t.Fatalf("member %d step %d: hub %v != solo %v",
					w, i, got[w][i], want[w][i])
			}
		}
	}

	// Observer accounting: every prediction rode exactly one batch.
	total, maxB := 0, 0
	for _, b := range batches {
		total += b
		if b > maxB {
			maxB = b
		}
	}
	wantPred := members * (steps - HistorySteps + 1)
	if total != wantPred {
		t.Errorf("observer saw %d predictions, want %d", total, wantPred)
	}
	if maxB > members {
		t.Errorf("batch of %d exceeds member count %d", maxB, members)
	}
	if maxB < 2 {
		t.Errorf("no batching happened (max batch %d); members should coalesce", maxB)
	}
}

// TestHubTimerFlushBoundsWait proves a straggling peer delays a pending
// prediction by at most the hub's maxWait: with two active members and
// only one submitting, the timer must flush the partial batch.
func TestHubTimerFlushBoundsWait(t *testing.T) {
	net := tinyNet(t)
	hub := NewHub(4, 10*time.Millisecond)
	g := hub.enter(net)
	hub.enter(net) // straggler: active, never submits

	seq := make([][]float32, HistorySteps)
	for i := range seq {
		row := make([]float32, FeatureDim)
		varyingFrame(i).VectorInto32(row)
		seq[i] = row
	}
	out := make([]float32, OutputDim)
	done := make(chan struct{}, 1)

	finished := make(chan struct{})
	go func() {
		g.predict(seq, out, done)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("predict never returned; timer flush did not fire")
	}

	// The partial batch of one must still be bit-identical to solo.
	sc := net.NewInferScratch32(1)
	want := net.PredictInto32(seq, sc)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestHubLeaveFlushesPending proves a member finishing its run releases
// waiting peers immediately: with the timer effectively disabled, the
// only thing that can flush the pending request is the leave itself.
func TestHubLeaveFlushesPending(t *testing.T) {
	net := tinyNet(t)
	hub := NewHub(4, time.Hour) // timer will never save us
	g := hub.enter(net)
	hub.enter(net) // second member; leaves instead of submitting

	seq := make([][]float32, HistorySteps)
	for i := range seq {
		row := make([]float32, FeatureDim)
		varyingFrame(i).VectorInto32(row)
		seq[i] = row
	}
	out := make([]float32, OutputDim)
	done := make(chan struct{}, 1)

	finished := make(chan struct{})
	go func() {
		g.predict(seq, out, done)
		close(finished)
	}()
	// Give the predictor time to enqueue, then retire the straggler.
	time.Sleep(20 * time.Millisecond)
	g.leave()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("predict never returned; leave did not flush")
	}
}

// TestHubRefreshAfterRetraining checks the shared scratch re-projects
// when the network weights move between runs.
func TestHubRefreshAfterRetraining(t *testing.T) {
	net := tinyNet(t)
	cfg := Config{Threshold: 0.5, Bias: 0.1}
	hub := NewHub(2, 0)

	m, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachHub(hub)
	runSteps(m, 50, 0)
	m.EndRun()

	// Move the weights; a new run through the hub must see them.
	seq := make([][]float64, HistorySteps)
	for i := range seq {
		seq[i] = varyingFrame(i).Vector()
	}
	opt := nn.NewAdam(net.Params(), 0.05)
	net.TrainBatch([]nn.Sample{{Seq: seq, Target: []float64{0.5, -0.25}}}, opt)

	if err := m.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	solo, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	wantCmds, _ := runSteps(solo, 100, 7)
	gotCmds, _ := runSteps(m, 100, 7)
	for i := range wantCmds {
		if wantCmds[i] != gotCmds[i] {
			t.Fatalf("step %d after retrain: hub %v != solo %v", i, gotCmds[i], wantCmds[i])
		}
	}
	m.EndRun()
}

// TestEndRunIdempotent ensures repeated EndRun calls (finalize plus
// AttachHub on the next run) are harmless.
func TestEndRunIdempotent(t *testing.T) {
	net := tinyNet(t)
	m, err := New(Config{Threshold: 0.5, Bias: 0.1}, tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	_ = net
	hub := NewHub(2, 0)
	m.AttachHub(hub)
	runSteps(m, 50, 0)
	m.EndRun()
	m.EndRun()
	m.AttachHub(hub) // also calls EndRun internally
	runSteps(m, 50, 0)
	m.EndRun()
}
