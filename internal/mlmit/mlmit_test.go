package mlmit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adasim/internal/nn"
	"adasim/internal/vehicle"
)

func tinyNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.NewNetwork(FeatureDim, []int{4}, OutputDim, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Threshold: 0, Bias: 1}).Validate(); err == nil {
		t.Error("zero threshold should fail")
	}
	if err := (Config{Threshold: 1, Bias: 0}).Validate(); err == nil {
		t.Error("zero bias should fail")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil network should fail")
	}
}

func TestFrameVectorScaling(t *testing.T) {
	f := Frame{
		EgoSpeed:      30,
		LeadDistance:  80,
		LaneLineLeft:  2,
		LaneLineRight: 2,
		PrevAccel:     4,
		PrevCurvature: 0.05,
	}
	v := f.Vector()
	if len(v) != FeatureDim {
		t.Fatalf("dim = %d", len(v))
	}
	for i, x := range v {
		if math.Abs(x-1) > 1e-12 {
			t.Errorf("feature %d = %v, want 1 (full-scale)", i, x)
		}
	}
}

func TestTargetScaleRoundTrip(t *testing.T) {
	f := func(a, k float64) bool {
		if math.IsNaN(a) || math.IsNaN(k) || math.Abs(a) > 100 || math.Abs(k) > 1 {
			return true
		}
		cmd := vehicle.Command{Accel: a, Curvature: k}
		back := UnscaleOutput(ScaleTarget(cmd))
		return math.Abs(back.Accel-a) < 1e-9 && math.Abs(back.Curvature-k) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWarmupPassesThrough(t *testing.T) {
	m, err := New(DefaultConfig(), tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	yOP := vehicle.Command{Accel: 1.2, Curvature: 0.001}
	for i := 0; i < HistorySteps-1; i++ {
		got, active := m.Update(float64(i)*0.01, Frame{EgoSpeed: 20}, yOP)
		if active || got != yOP {
			t.Fatalf("step %d: warmup should pass through", i)
		}
	}
}

func TestCUSUMNonNegativeProperty(t *testing.T) {
	m, err := New(DefaultConfig(), tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		frame := Frame{
			EgoSpeed:      rng.Float64() * 30,
			LeadDistance:  rng.Float64() * 80,
			LaneLineLeft:  rng.Float64() * 2,
			LaneLineRight: rng.Float64() * 2,
			PrevAccel:     rng.NormFloat64(),
			PrevCurvature: rng.NormFloat64() * 0.01,
		}
		yOP := vehicle.Command{Accel: rng.NormFloat64() * 3, Curvature: rng.NormFloat64() * 0.01}
		m.Update(float64(i)*0.01, frame, yOP)
		if m.S() < 0 {
			t.Fatalf("S went negative: %v", m.S())
		}
	}
}

func TestRecoveryActivatesOnPersistentDiscrepancy(t *testing.T) {
	// An untrained network's prediction will differ wildly from a large
	// constant controller output, so the CUSUM must eventually trip.
	m, err := New(Config{Threshold: 1.0, Bias: 0.1}, tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	yOP := vehicle.Command{Accel: 4, Curvature: 0.05}
	frame := Frame{EgoSpeed: 20, LeadDistance: 10}
	activated := false
	for i := 0; i < 400; i++ {
		_, active := m.Update(float64(i)*0.01, frame, yOP)
		if active {
			activated = true
			break
		}
	}
	if !activated {
		t.Fatal("recovery never activated")
	}
	if m.FirstRecoveryAt() < 0 {
		t.Error("FirstRecoveryAt not recorded")
	}
	if m.RecoverySteps() == 0 {
		t.Error("RecoverySteps not counted")
	}
}

func TestRecoveryExecutesMLOutput(t *testing.T) {
	m, err := New(Config{Threshold: 0.5, Bias: 0.05}, tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	yOP := vehicle.Command{Accel: 4, Curvature: 0.05}
	frame := Frame{EgoSpeed: 20, LeadDistance: 10}
	for i := 0; i < 400; i++ {
		got, active := m.Update(float64(i)*0.01, frame, yOP)
		if active {
			if got == yOP {
				t.Fatal("recovery should execute the ML output, not yOP")
			}
			return
		}
	}
	t.Fatal("never entered recovery")
}

func TestRecoveryExitsWhenAgreeing(t *testing.T) {
	m, err := New(Config{Threshold: 0.5, Bias: 0.1}, tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	// Force into recovery with a large discrepancy.
	frame := Frame{EgoSpeed: 20, LeadDistance: 10}
	for i := 0; i < 400 && !m.InRecovery(); i++ {
		m.Update(float64(i)*0.01, frame, vehicle.Command{Accel: 4, Curvature: 0.05})
	}
	if !m.InRecovery() {
		t.Fatal("setup failed: not in recovery")
	}
	// Now feed a controller output identical to the ML prediction: the
	// discrepancy is zero, so recovery must exit and S reset. Every
	// history entry is the same constant frame, so the window the next
	// Update will predict over is 20 copies of its vector.
	seq := make([][]float64, HistorySteps)
	for i := range seq {
		seq[i] = frame.Vector()
	}
	yML := UnscaleOutput(m.net.Predict(seq))
	got, active := m.Update(10, frame, yML)
	if active || m.InRecovery() {
		t.Error("recovery should exit when outputs agree")
	}
	if m.S() != 0 {
		t.Errorf("S should reset, got %v", m.S())
	}
	if got != yML {
		t.Errorf("exit step should execute yOP (= yML here)")
	}
}

// varyingFrame returns a deterministic, step-dependent frame so history
// windows actually differ across steps.
func varyingFrame(i int) Frame {
	return Frame{
		EgoSpeed:      20 + math.Sin(float64(i)*0.1)*3,
		LeadDistance:  40 + math.Cos(float64(i)*0.07)*10,
		LaneLineLeft:  1.8 + math.Sin(float64(i)*0.03)*0.2,
		LaneLineRight: 1.8 - math.Sin(float64(i)*0.03)*0.2,
		PrevAccel:     math.Sin(float64(i) * 0.05),
		PrevCurvature: 0.01 * math.Cos(float64(i)*0.02),
	}
}

func TestResetMatchesFresh(t *testing.T) {
	net := tinyNet(t)
	cfg := Config{Threshold: 0.5, Bias: 0.1}
	reused, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the reused mitigator with one run's worth of state.
	for i := 0; i < 120; i++ {
		reused.Update(float64(i)*0.01, varyingFrame(i+31), vehicle.Command{Accel: 2})
	}
	if err := reused.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		fr := varyingFrame(i)
		yOP := vehicle.Command{Accel: 1.5, Curvature: 0.002}
		t1, a1 := fresh.Update(float64(i)*0.01, fr, yOP)
		t2, a2 := reused.Update(float64(i)*0.01, fr, yOP)
		if t1 != t2 || a1 != a2 {
			t.Fatalf("step %d: fresh (%v,%v) != reused (%v,%v)", i, t1, a1, t2, a2)
		}
		if fresh.S() != reused.S() {
			t.Fatalf("step %d: S fresh %v != reused %v", i, fresh.S(), reused.S())
		}
	}
}

func TestUpdateZeroAllocs(t *testing.T) {
	m, err := New(DefaultConfig(), tinyNet(t))
	if err != nil {
		t.Fatal(err)
	}
	yOP := vehicle.Command{Accel: 1}
	for i := 0; i < 2*HistorySteps; i++ { // warm up past the window fill
		m.Update(float64(i)*0.01, varyingFrame(i), yOP)
	}
	i := 2 * HistorySteps
	if allocs := testing.AllocsPerRun(200, func() {
		m.Update(float64(i)*0.01, varyingFrame(i), yOP)
		i++
	}); allocs != 0 {
		t.Errorf("Update allocs/op = %v, want 0", allocs)
	}
}
