package mlmit

import (
	"sync"
	"time"

	"adasim/internal/nn"
)

// Hub batches LSTM inference across concurrently executing runs in one
// process. Mitigators sharing a network form a group; each control
// cycle a member submits its feature window and blocks until the
// group's leader executes one fused nn.PredictBatchInto for every
// pending member. Because batched and solo outputs are bit-identical
// (the nn determinism contract), batching policy — who flushes, how
// many ride along, timer timing — affects only throughput, never a
// run's results: same-seed byte identity of campaign outputs holds for
// any batch composition.
//
// Flush policy: a batch executes as soon as every active member has
// submitted (the steady state: members predict in near-lockstep, so
// this is the common path), when it reaches the hub's batch capacity,
// or after a bounded wait — so one member busy elsewhere (warmup,
// finishing its run) delays peers by at most MaxWait.
type Hub struct {
	maxBatch int
	maxWait  time.Duration

	// observe, when set, is invoked after every batched inference with
	// the batch size and kernel duration. Set it before the first run;
	// it is read without synchronisation afterwards.
	observe func(batch int, d time.Duration)

	mu     sync.Mutex
	groups map[*nn.Network]*hubGroup
}

// DefaultMaxWait bounds how long a pending prediction waits for
// straggler members before executing a partial batch. One batched
// inference of the paper-sized network is ~1ms, so 200µs adds little
// latency while letting near-lockstep members coalesce.
const DefaultMaxWait = 200 * time.Microsecond

// NewHub builds a batcher coalescing up to maxBatch concurrent
// predictions (typically the worker count). maxWait <= 0 selects
// DefaultMaxWait.
func NewHub(maxBatch int, maxWait time.Duration) *Hub {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = DefaultMaxWait
	}
	return &Hub{
		maxBatch: maxBatch,
		maxWait:  maxWait,
		groups:   make(map[*nn.Network]*hubGroup),
	}
}

// MaxBatch returns the batch capacity.
func (h *Hub) MaxBatch() int { return h.maxBatch }

// SetObserver registers the per-batch metrics callback. Call before
// any runs execute.
func (h *Hub) SetObserver(f func(batch int, d time.Duration)) { h.observe = f }

// enter joins the calling Mitigator to the network's group, creating
// it on first use, and returns the group. The shared scratch is
// (re)projected if the network weights moved since the last batch.
func (h *Hub) enter(net *nn.Network) *hubGroup {
	h.mu.Lock()
	g := h.groups[net]
	if g == nil {
		g = &hubGroup{hub: h, net: net}
		h.groups[net] = g
	}
	h.mu.Unlock()
	g.mu.Lock()
	g.active++
	g.mu.Unlock()
	g.ensureScratch()
	return g
}

// hubGroup is the per-network batching state.
type hubGroup struct {
	hub *Hub
	net *nn.Network

	// execMu serialises use of the shared inference scratch.
	execMu  sync.Mutex
	scratch *nn.InferScratch32
	ver     uint64
	seqBuf  [][][]float32

	mu      sync.Mutex
	active  int // members currently inside a run
	pending []hubReq
	free    [][]hubReq // recycled batch buffers
	gen     uint64     // increments per flush; stales old timers
	timer   *time.Timer
}

// hubReq is one member's pending prediction: its feature window, the
// buffer the scaled outputs land in, and its completion signal.
type hubReq struct {
	seq  [][]float32
	out  []float32
	done chan struct{}
}

func (g *hubGroup) ensureScratch() {
	g.execMu.Lock()
	defer g.execMu.Unlock()
	if g.scratch == nil {
		g.scratch = g.net.NewInferScratch32(g.hub.maxBatch)
		g.ver = g.net.Version()
	} else if v := g.net.Version(); v != g.ver {
		g.scratch.Refresh(g.net)
		g.ver = v
	}
}

// predict submits one window and blocks until its outputs are in out.
// The caller's seq rows must stay untouched until predict returns.
func (g *hubGroup) predict(seq [][]float32, out []float32, done chan struct{}) {
	g.mu.Lock()
	g.pending = append(g.pending, hubReq{seq: seq, out: out, done: done})
	if len(g.pending) >= g.active || len(g.pending) >= g.hub.maxBatch {
		batch := g.takeLocked()
		g.mu.Unlock()
		g.exec(batch)
		<-done // drain our own completion token
		return
	}
	if len(g.pending) == 1 {
		gen := g.gen
		g.timer = time.AfterFunc(g.hub.maxWait, func() { g.timerFlush(gen) })
	}
	g.mu.Unlock()
	<-done
}

// takeLocked claims the pending batch for execution. Caller holds g.mu.
func (g *hubGroup) takeLocked() []hubReq {
	batch := g.pending
	g.gen++
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	if n := len(g.free); n > 0 {
		g.pending = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		g.pending = make([]hubReq, 0, g.hub.maxBatch)
	}
	return batch
}

func (g *hubGroup) timerFlush(gen uint64) {
	g.mu.Lock()
	if g.gen != gen || len(g.pending) == 0 {
		g.mu.Unlock()
		return
	}
	batch := g.takeLocked()
	g.mu.Unlock()
	g.exec(batch)
}

// leave removes one member; if the remaining pending requests now form
// a complete batch, it flushes them so nobody waits out the timer.
func (g *hubGroup) leave() {
	g.mu.Lock()
	if g.active > 0 {
		g.active--
	}
	var batch []hubReq
	if len(g.pending) > 0 && len(g.pending) >= g.active {
		batch = g.takeLocked()
	}
	g.mu.Unlock()
	if batch != nil {
		g.exec(batch)
	}
}

// exec runs one fused inference for the batch and signals every member.
func (g *hubGroup) exec(batch []hubReq) {
	g.execMu.Lock()
	obs := g.hub.observe
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	seqs := g.seqBuf[:0]
	for _, r := range batch {
		seqs = append(seqs, r.seq)
	}
	g.seqBuf = seqs
	rows := g.net.PredictBatchInto(seqs, g.scratch)
	for i, r := range batch {
		copy(r.out, rows[i])
	}
	g.execMu.Unlock()
	if obs != nil {
		obs(len(batch), time.Since(start))
	}
	for _, r := range batch {
		r.done <- struct{}{}
	}
	g.mu.Lock()
	g.free = append(g.free, batch[:0])
	g.mu.Unlock()
}
