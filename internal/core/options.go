// Package core implements the paper's closed-loop simulation platform
// (Fig. 3): it wires the world simulator, the perception model, the
// fault-injection engine, the OpenPilot control software, and the
// three-level safety interventions (AEBS, firmware safety checking,
// driver reactions) plus the ML-based mitigation baseline, then runs a
// full experiment and classifies hazards (H1/H2) and accidents (A1/A2).
package core

import (
	"fmt"

	"adasim/internal/aebs"
	"adasim/internal/driver"
	"adasim/internal/fi"
	"adasim/internal/mlmit"
	"adasim/internal/monitor"
	"adasim/internal/nn"
	"adasim/internal/openpilot"
	"adasim/internal/panda"
	"adasim/internal/perception"
	"adasim/internal/road"
	"adasim/internal/scenario"
	"adasim/internal/vehicle"
)

// Default run dimensions from the paper: 10,000 steps of ~10 ms each,
// 100 s of simulated time per run.
const (
	DefaultSteps    = 10000
	DefaultStepSize = 0.01
)

// DefaultPatchStart is where the adversarial road patch begins (arc
// length, m) unless overridden.
const DefaultPatchStart = 230.0

// DefaultPatchLength is the along-road extent of the road patch (m).
const DefaultPatchLength = 6.0

// InterventionSet selects which safety interventions are active,
// mirroring the configuration columns of Table VI. The json tags define
// the stable wire format used by campaign-service job specs; MLNet is
// deliberately excluded (trained weights do not travel in a job spec —
// the service rejects ML jobs instead).
type InterventionSet struct {
	// Driver enables the human-driver reaction simulator.
	Driver bool `json:"driver,omitempty"`
	// DriverConfig overrides the driver parameters (nil = defaults).
	DriverConfig *driver.Config `json:"driver_config,omitempty"`
	// SafetyCheck enables the firmware (PANDA-style) safety checker.
	SafetyCheck bool `json:"safety_check,omitempty"`
	// AEB selects the AEBS input source; aebs.SourceDisabled (or zero)
	// disables the AEBS.
	AEB aebs.InputSource `json:"aeb,omitempty"`
	// ML enables the ML-based mitigation baseline; MLNet must be a
	// trained network with mlmit dimensions.
	ML    bool        `json:"ml,omitempty"`
	MLNet *nn.Network `json:"-"`
	// MLHub, when non-nil, batches this run's LSTM inference with other
	// in-process runs sharing the network (see mlmit.Hub). Batched and
	// solo predictions are bit-identical, so the hub never changes a
	// run's outputs. Like MLNet it is injected by the executing process
	// and excluded from the wire format.
	MLHub *mlmit.Hub `json:"-"`
	// MLConfig overrides the Algorithm 1 parameters (nil = defaults).
	MLConfig *mlmit.Config `json:"ml_config,omitempty"`
	// Monitor enables the rule-based runtime anomaly monitor (an
	// extension beyond the paper's intervention set).
	Monitor bool `json:"monitor,omitempty"`
	// MonitorConfig overrides the monitor thresholds (nil = defaults).
	MonitorConfig *monitor.Config `json:"monitor_config,omitempty"`
	// DriverPriorityOverAEB inverts the paper's priority hierarchy so
	// the driver overrides the AEB (ablation of Observation 4).
	DriverPriorityOverAEB bool `json:"driver_priority_over_aeb,omitempty"`
}

// Label returns a short description matching the Table VI row labels.
func (s InterventionSet) Label() string {
	switch {
	case !s.Driver && !s.SafetyCheck && s.AEB == 0 && !s.ML && !s.Monitor:
		return "none"
	default:
		lbl := ""
		if s.Driver {
			lbl += "driver+"
		}
		if s.SafetyCheck {
			lbl += "check+"
		}
		switch s.AEB {
		case aebs.SourceCompromised:
			lbl += "aeb-comp+"
		case aebs.SourceIndependent:
			lbl += "aeb-indep+"
		}
		if s.ML {
			lbl += "ml+"
		}
		if s.Monitor {
			lbl += "monitor+"
		}
		return lbl[:len(lbl)-1]
	}
}

// Options configures one closed-loop run.
type Options struct {
	// Scenario is the driving scenario instance to run.
	Scenario scenario.Spec
	// Map selects the highway map; zero value defaults to road.MapCurvy
	// (the paper's map has both straight and curvy stretches).
	Map road.MapKind
	// FrictionScale multiplies the default road friction (1.0 = dry;
	// 0.75/0.5/0.25 reproduce Table VIII). Zero means 1.0.
	FrictionScale float64
	// Fault configures the fault-injection engine; a zero value (target
	// fi.TargetNone) runs fault-free.
	Fault fi.Params
	// ExtendedFault enables one of the extension attacks
	// (fi.ExtendedTargets); zero disables. It can be combined with
	// Fault.
	ExtendedFault fi.Target
	// ExtendedParams overrides the extension-attack parameters (nil =
	// defaults).
	ExtendedParams *fi.ExtensionParams
	// Interventions selects the safety interventions.
	Interventions InterventionSet
	// Seed drives all stochastic components of the run.
	Seed int64
	// Steps and StepSize override the run length (defaults 10000 x 10 ms).
	Steps    int
	StepSize float64
	// PatchStart/PatchLength place the adversarial road patch; zero
	// values use the defaults.
	PatchStart  float64
	PatchLength float64
	// OpenPilot, Perception, AEBS, Vehicle, Panda override component
	// configs (nil = package defaults).
	OpenPilot  *openpilot.Config
	Perception *perception.Config
	AEBS       *aebs.Config
	Vehicle    *vehicle.Params
	Panda      *panda.Limits
	// RecordTrace keeps the full per-step time series in the result.
	RecordTrace bool
	// RecordMLFrames collects (fault-free input frame, executed command)
	// pairs each step, used to build training data for the ML baseline.
	RecordMLFrames bool
	// ContinueAfterAccident keeps simulating after an accident instead
	// of terminating the run.
	ContinueAfterAccident bool
}

// WithDefaults returns a copy of o with zero values replaced by
// defaults. It is exported so run fingerprinting (experiments) hashes the
// same resolved options the platform executes, regardless of which zero
// values the caller left implicit.
func (o Options) WithDefaults() Options {
	if o.Map == 0 {
		o.Map = road.MapCurvy
	}
	if o.FrictionScale == 0 {
		o.FrictionScale = 1
	}
	if o.Steps == 0 {
		o.Steps = DefaultSteps
	}
	if o.StepSize == 0 {
		o.StepSize = DefaultStepSize
	}
	if o.PatchStart == 0 {
		o.PatchStart = DefaultPatchStart
	}
	if o.PatchLength == 0 {
		o.PatchLength = DefaultPatchLength
	}
	return o
}

// validate rejects unusable options.
func (o Options) validate() error {
	if err := o.Scenario.Validate(); err != nil {
		return err
	}
	if o.Steps < 0 || o.StepSize < 0 {
		return fmt.Errorf("core: Steps/StepSize must be non-negative")
	}
	if o.FrictionScale < 0 {
		return fmt.Errorf("core: FrictionScale must be non-negative")
	}
	if o.Interventions.ML && o.Interventions.MLNet == nil {
		return fmt.Errorf("core: ML intervention enabled without a trained network")
	}
	return nil
}
