package core

import (
	"math"
	"testing"

	"adasim/internal/aebs"
	"adasim/internal/driver"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/mlmit"
	"adasim/internal/nn"
	"adasim/internal/scenario"
)

// shortOpts returns options for a reduced-length run (40 s), enough for
// the 60 m initial gap dynamics to fully play out.
func shortOpts(id scenario.ID, gap float64) Options {
	return Options{
		Scenario: scenario.DefaultSpec(id, gap),
		Seed:     1,
		Steps:    4000,
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("empty options should fail")
	}
	bad := shortOpts(scenario.S1, 60)
	bad.Interventions.ML = true // without a network
	if _, err := Run(bad); err == nil {
		t.Error("ML without network should fail")
	}
	neg := shortOpts(scenario.S1, 60)
	neg.FrictionScale = -1
	if _, err := Run(neg); err == nil {
		t.Error("negative friction scale should fail")
	}
}

func TestInterventionLabels(t *testing.T) {
	if (InterventionSet{}).Label() != "none" {
		t.Error("empty set label")
	}
	s := InterventionSet{Driver: true, SafetyCheck: true, AEB: aebs.SourceIndependent}
	if s.Label() != "driver+check+aeb-indep" {
		t.Errorf("label = %s", s.Label())
	}
	if (InterventionSet{ML: true}).Label() != "ml" {
		t.Errorf("ml label = %s", InterventionSet{ML: true}.Label())
	}
}

func TestBenignRunCompletes(t *testing.T) {
	res, err := Run(shortOpts(scenario.S1, 60))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcome
	if o.Accident != metrics.AccidentNone {
		t.Fatalf("benign S1 should be accident-free, got %v at %v", o.Accident, o.AccidentAt)
	}
	if o.FollowingDistance < 20 || o.FollowingDistance > 45 {
		t.Errorf("following distance = %v, want a ~2 s gap", o.FollowingDistance)
	}
	if o.HardestBrake <= 0.1 || o.HardestBrake > 1 {
		t.Errorf("hardest brake = %v", o.HardestBrake)
	}
	if math.IsInf(o.MinTTC, 1) {
		t.Error("min TTC never computed")
	}
	if o.Steps == 0 || o.Duration == 0 {
		t.Error("run accounting missing")
	}
}

func TestRDAttackCausesForwardCollision(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Fault = fi.DefaultParams(fi.TargetRelDistance)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentA1 {
		t.Fatalf("RD attack should end in A1, got %v", res.Outcome.Accident)
	}
	if res.Outcome.FaultFirstAt < 0 {
		t.Error("fault activation not recorded")
	}
	if !res.Outcome.HazardH1 {
		t.Error("H1 should precede the collision")
	}
}

func TestCurvatureAttackCausesLaneDeparture(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Fault = fi.DefaultParams(fi.TargetCurvature)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentA2 {
		t.Fatalf("curvature attack should end in A2, got %v", res.Outcome.Accident)
	}
	if !res.Outcome.HazardH2 {
		t.Error("H2 should precede the lane departure")
	}
}

func TestAEBIndependentPreventsRDAttack(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Fault = fi.DefaultParams(fi.TargetRelDistance)
	opts.Interventions = InterventionSet{AEB: aebs.SourceIndependent}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentNone {
		t.Fatalf("AEB-independent should prevent, got %v", res.Outcome.Accident)
	}
	if res.Outcome.AEBBrakeAt < 0 {
		t.Error("AEB should have braked")
	}
	if res.Outcome.FCWAt < 0 {
		t.Error("FCW should have fired")
	}
}

func TestAEBCompromisedFailsRDAttack(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Fault = fi.DefaultParams(fi.TargetRelDistance)
	opts.Interventions = InterventionSet{AEB: aebs.SourceCompromised}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentA1 {
		t.Fatalf("compromised AEB should not prevent the RD attack, got %v",
			res.Outcome.Accident)
	}
}

func TestDriverBrakesUnderRDAttack(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Fault = fi.DefaultParams(fi.TargetRelDistance)
	opts.Interventions = InterventionSet{Driver: true}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.DriverBrakeAt < 0 {
		t.Error("driver should have braked under the RD attack")
	}
}

func TestSafetyCheckBlocksCommands(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Interventions = InterventionSet{SafetyCheck: true}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The benign approach commands braking beyond -3.5 m/s^2, which the
	// checker clamps.
	if res.CheckerBlocked == 0 {
		t.Error("safety checker should have modified some commands")
	}
}

func TestDeterminism(t *testing.T) {
	opts := shortOpts(scenario.S3, 60)
	opts.Fault = fi.DefaultParams(fi.TargetMixed)
	opts.Interventions = InterventionSet{Driver: true}
	r1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome != r2.Outcome {
		t.Errorf("same seed should give identical outcomes:\n%+v\n%+v", r1.Outcome, r2.Outcome)
	}
	opts.Seed = 2
	r3, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Outcome == r1.Outcome {
		t.Error("different seed should change the run (jitter/noise)")
	}
}

func TestTraceRecording(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.RecordTrace = true
	opts.Steps = 500
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() != 500 {
		t.Fatalf("trace missing or wrong length")
	}
	s := res.Trace.Samples[100]
	if s.T <= 0 || s.EgoV <= 0 {
		t.Errorf("sample looks empty: %+v", s)
	}
}

func TestMLFrameRecording(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.RecordMLFrames = true
	opts.Steps = 300
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MLFrames) != 300 {
		t.Fatalf("ml frames = %d", len(res.MLFrames))
	}
	p := res.MLFrames[200]
	if p.Frame.EgoSpeed <= 0 || p.Frame.LeadDistance <= 0 {
		t.Errorf("frame looks empty: %+v", p.Frame)
	}
}

func TestMLInterventionRuns(t *testing.T) {
	net, err := nn.NewNetwork(mlmit.FeatureDim, []int{4}, mlmit.OutputDim, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := shortOpts(scenario.S1, 60)
	opts.Interventions = InterventionSet{ML: true, MLNet: net}
	if _, err := Run(opts); err != nil {
		t.Fatalf("ML run failed: %v", err)
	}
}

func TestStepAPI(t *testing.T) {
	p, err := NewPlatform(shortOpts(scenario.S1, 60))
	if err != nil {
		t.Fatal(err)
	}
	if p.Finished() {
		t.Error("fresh platform should not be finished")
	}
	p.Step()
	if got := p.World().Time(); math.Abs(got-DefaultStepSize) > 1e-9 {
		t.Errorf("time after one step = %v", got)
	}
	res := p.Run()
	if !p.Finished() {
		t.Error("platform should be finished after Run")
	}
	if res.Outcome.Steps == 0 {
		t.Error("no steps recorded")
	}
	p.Step() // must be a no-op
	if p.World().Time() != res.Outcome.Duration {
		t.Error("stepping a finished platform should do nothing")
	}
}

func TestStopOnAccidentVsContinue(t *testing.T) {
	opts := shortOpts(scenario.S1, 60)
	opts.Fault = fi.DefaultParams(fi.TargetRelDistance)
	stop, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ContinueAfterAccident = true
	cont, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Outcome.Accident == metrics.AccidentNone {
		t.Skip("no accident to compare")
	}
	if cont.Outcome.Steps <= stop.Outcome.Steps {
		t.Errorf("continue run should be longer: %d vs %d",
			cont.Outcome.Steps, stop.Outcome.Steps)
	}
}

func TestDriverReactionTimeAffectsOutcome(t *testing.T) {
	base := shortOpts(scenario.S1, 60)
	base.Fault = fi.DefaultParams(fi.TargetCurvature)
	fast := driver.DefaultConfig()
	fast.ReactionTime = 1.0
	base.Interventions = InterventionSet{Driver: true, DriverConfig: &fast}
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentNone {
		t.Errorf("1.0 s reaction driver should prevent the S1-60 curvature attack, got %v",
			res.Outcome.Accident)
	}
}

func TestFrictionScaleChangesPhysics(t *testing.T) {
	dry := shortOpts(scenario.S4, 60)
	icy := dry
	icy.FrictionScale = 0.25
	d, err := Run(dry)
	if err != nil {
		t.Fatal(err)
	}
	i, err := Run(icy)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome == i.Outcome {
		t.Error("friction change should alter the outcome record")
	}
}
