package core

import (
	"fmt"
	"math"
	"math/rand"

	"adasim/internal/aebs"
	"adasim/internal/driver"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/mlmit"
	"adasim/internal/monitor"
	"adasim/internal/openpilot"
	"adasim/internal/panda"
	"adasim/internal/perception"
	"adasim/internal/road"
	"adasim/internal/safety"
	"adasim/internal/scenario"
	"adasim/internal/vehicle"
	"adasim/internal/world"
)

// Result is the product of one closed-loop run.
type Result struct {
	Outcome metrics.Outcome
	// Trace is the full time series; nil unless Options.RecordTrace.
	Trace *metrics.Trace
	// CheckerBlocked counts firmware-check command modifications.
	CheckerBlocked int
	// MLFrames are the recorded training points; nil unless
	// Options.RecordMLFrames.
	MLFrames []TrainingPoint
}

// TrainingPoint is one step of ML-baseline training data: the fault-free
// sensor frame and the command the stack executed.
type TrainingPoint struct {
	Frame    mlmit.Frame
	Executed vehicle.Command
}

// Platform is an assembled closed-loop simulation ready to run. Most
// callers use Run; Platform is exported for step-by-step inspection in
// tests and examples. After a run completes, Reset reinitialises the
// platform for another run without rebuilding the expensive parts.
type Platform struct {
	opts Options
	rng  *rand.Rand

	road        *road.Road
	world       *world.World
	percep      *perception.Model
	injector    *fi.Injector
	extInjector *fi.ExtendedInjector // nil when no extension attack
	opctl       *openpilot.Controller
	aeb         *aebs.System // nil when disabled
	drv         *driver.Model
	checker     *panda.Checker
	arbiter     *safety.Arbiter
	mit         *mlmit.Mitigator
	mon         *monitor.Monitor // nil when disabled

	outcome  metrics.Outcome
	trace    *metrics.Trace
	mlPoints []TrainingPoint
	lastCmd  vehicle.Command
	aebsCfg  aebs.Config
	step     int
	finished bool

	followSum   float64
	followCount int
}

// NewPlatform assembles a platform from options.
func NewPlatform(opts Options) (*Platform, error) {
	p := &Platform{}
	if err := p.init(opts); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset reinitialises the platform for a new run with the given options
// and seed (seed overrides opts.Seed), reusing everything expensive the
// previous run allocated: the road map (when the map configuration is
// unchanged), the perception latency ring, the monitor windows, the ML
// mitigator's network weights and inference scratch, and the world's
// actor storage. A reset platform produces a bit-identical trajectory to
// a freshly constructed one with the same options and seed.
//
// On error the platform may be partially reinitialised and must not be
// stepped; construct a fresh one instead.
func (p *Platform) Reset(opts Options, seed int64) error {
	opts.Seed = seed
	return p.init(opts)
}

// sameRoad reports whether two defaulted option sets build the same road.
func sameRoad(a, b Options) bool {
	return a.Map == b.Map && a.FrictionScale == b.FrictionScale &&
		a.PatchStart == b.PatchStart && a.PatchLength == b.PatchLength
}

// traceCap bounds the preallocated trace capacity: full paper runs are
// 10k steps, but benchmarks pass effectively unbounded step counts.
const traceCap = 1 << 16

// init (re)builds the platform state from opts. It is the shared body of
// NewPlatform and Reset: on a fresh platform every component is
// constructed; on reuse the buffer-heavy components are reset in place.
// The rng draw order must not change — perception and driver seeds derive
// from it and determinism across fresh/reused platforms depends on it.
func (p *Platform) init(opts Options) error {
	opts = opts.WithDefaults()
	if err := opts.validate(); err != nil {
		return err
	}
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(opts.Seed))
	} else {
		p.rng.Seed(opts.Seed)
	}
	rng := p.rng
	rd := p.road
	if rd == nil || !sameRoad(p.opts, opts) {
		patches := []road.PatchZone{{
			StartS: opts.PatchStart,
			EndS:   opts.PatchStart + opts.PatchLength,
			Lane:   1,
		}}
		var err error
		rd, err = road.BuildMap(opts.Map, road.DefaultFriction*opts.FrictionScale, patches)
		if err != nil {
			return err
		}
	}
	params := vehicle.DefaultParams()
	if opts.Vehicle != nil {
		params = *opts.Vehicle
	}
	setup, err := scenario.Build(opts.Scenario, rd, params, rng)
	if err != nil {
		return err
	}
	wcfg := world.Config{
		Road:   rd,
		Ego:    setup.Ego,
		Actors: setup.Actors,
		Step:   opts.StepSize,
	}
	if p.world == nil {
		p.world, err = world.New(wcfg)
	} else {
		err = p.world.Reset(wcfg)
	}
	if err != nil {
		return err
	}
	pcfg := perception.DefaultConfig()
	if opts.Perception != nil {
		pcfg = *opts.Perception
	}
	percepSeed := rng.Int63()
	if p.percep == nil {
		p.percep, err = perception.New(pcfg, percepSeed)
	} else {
		err = p.percep.Reset(pcfg, percepSeed)
	}
	if err != nil {
		return err
	}
	injector, err := fi.New(opts.Fault)
	if err != nil {
		return err
	}
	opcfg := openpilot.DefaultConfig()
	if opts.OpenPilot != nil {
		opcfg = *opts.OpenPilot
	}
	opcfg.SetSpeed = opts.Scenario.EgoSpeed
	opctl, err := openpilot.New(opcfg)
	if err != nil {
		return err
	}
	acfg := aebs.DefaultConfig()
	if opts.AEBS != nil {
		acfg = *opts.AEBS
	}
	var aebSys *aebs.System
	if src := opts.Interventions.AEB; src != 0 && src != aebs.SourceDisabled {
		aebSys, err = aebs.New(acfg, src)
		if err != nil {
			return err
		}
	}
	var drv *driver.Model
	if opts.Interventions.Driver {
		dcfg := driver.DefaultConfig()
		if opts.Interventions.DriverConfig != nil {
			dcfg = *opts.Interventions.DriverConfig
		}
		dcfg.VehicleLength = params.Length
		drv, err = driver.NewSeeded(dcfg, rng.Int63())
		if err != nil {
			return err
		}
	}
	var checker *panda.Checker
	if opts.Interventions.SafetyCheck {
		limits := panda.DefaultLimits()
		if opts.Panda != nil {
			limits = *opts.Panda
		}
		checker, err = panda.New(limits)
		if err != nil {
			return err
		}
	}
	var extInjector *fi.ExtendedInjector
	if opts.ExtendedFault != 0 {
		extParams := fi.DefaultExtensionParams()
		if opts.ExtendedParams != nil {
			extParams = *opts.ExtendedParams
		}
		extInjector, err = fi.NewExtended(opts.ExtendedFault, extParams)
		if err != nil {
			return err
		}
	}
	if opts.Interventions.Monitor {
		mcfg := monitor.DefaultConfig()
		if opts.Interventions.MonitorConfig != nil {
			mcfg = *opts.Interventions.MonitorConfig
		}
		if p.mon == nil {
			p.mon, err = monitor.New(mcfg)
		} else {
			err = p.mon.Reset(mcfg)
		}
		if err != nil {
			return err
		}
	} else {
		p.mon = nil
	}
	if opts.Interventions.ML {
		mcfg := mlmit.DefaultConfig()
		if opts.Interventions.MLConfig != nil {
			mcfg = *opts.Interventions.MLConfig
		}
		if p.mit != nil && p.mit.Net() == opts.Interventions.MLNet {
			err = p.mit.Reset(mcfg)
		} else {
			p.mit, err = mlmit.New(mcfg, opts.Interventions.MLNet)
		}
		if err != nil {
			return err
		}
		p.mit.AttachHub(opts.Interventions.MLHub)
	} else {
		p.mit = nil
	}

	p.opts = opts
	p.road = rd
	p.injector = injector
	p.extInjector = extInjector
	p.opctl = opctl
	p.aeb = aebSys
	p.drv = drv
	p.checker = checker
	p.arbiter = safety.New(safety.Config{
		AEBOverridesDriver: !opts.Interventions.DriverPriorityOverAEB,
		MaxBrake:           params.MaxBrake,
		Checker:            checker,
	})
	p.outcome = metrics.NewOutcome()
	p.aebsCfg = acfg
	// Traces and ML frames escape via Result, so reuse would clobber the
	// previous run's data: hand out fresh storage each run instead.
	p.trace = nil
	if opts.RecordTrace {
		p.trace = metrics.NewTrace(min(opts.Steps, traceCap))
	}
	p.mlPoints = nil
	p.lastCmd = vehicle.Command{}
	p.step = 0
	p.finished = false
	p.followSum = 0
	p.followCount = 0
	return nil
}

// World exposes the underlying world (read-mostly; used by tests).
func (p *Platform) World() *world.World { return p.world }

// Outcome returns the outcome accumulated so far.
func (p *Platform) Outcome() metrics.Outcome { return p.outcome }

// Finished reports whether the run has terminated.
func (p *Platform) Finished() bool { return p.finished }

// Run executes the remaining steps and returns the result.
func (p *Platform) Run() *Result {
	for p.step < p.opts.Steps && !p.finished {
		p.Step()
	}
	p.finalize()
	res := &Result{Outcome: p.outcome, Trace: p.trace, MLFrames: p.mlPoints}
	if p.checker != nil {
		res.CheckerBlocked = p.checker.Blocked()
	}
	return res
}

// Run assembles a platform from options and executes it to completion.
func Run(opts Options) (*Result, error) {
	p, err := NewPlatform(opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return p.Run(), nil
}

// Step advances the closed loop by one control cycle.
func (p *Platform) Step() {
	if p.finished {
		return
	}
	t := p.world.Time()
	dt := p.world.StepSize()
	egoState := p.world.Ego().State()

	// 1. Perception, then fault injection on its outputs.
	out := p.percep.Perceive(p.world)
	faultActive := p.injector.Apply(t, &out)
	if p.extInjector != nil {
		faultActive = p.extInjector.Apply(t, &out) || faultActive
	}
	if p.outcome.FaultFirstAt < 0 {
		if at := p.injector.FirstActiveAt(); at >= 0 {
			p.outcome.FaultFirstAt = at
		}
	}
	if p.extInjector != nil && p.extInjector.FirstActiveAt() >= 0 {
		if p.outcome.FaultFirstAt < 0 || p.extInjector.FirstActiveAt() < p.outcome.FaultFirstAt {
			p.outcome.FaultFirstAt = p.extInjector.FirstActiveAt()
		}
	}

	// 2. ADAS control software.
	opCmd := p.opctl.Update(out, dt)

	// 2b. Rule-based runtime anomaly monitor (extension mitigation).
	var monDec monitor.Decision
	if p.mon != nil {
		monDec = p.mon.Update(t, out, opCmd, dt)
		if monDec.Active && p.outcome.MonitorAt < 0 {
			p.outcome.MonitorAt = t
		}
	}

	// 3. AEBS on its configured input source.
	var aebDec aebs.Decision
	trueLead, trueGap, trueLeadOK := p.world.Lead()
	if p.aeb != nil {
		var in aebs.Inputs
		switch p.aeb.Source() {
		case aebs.SourceIndependent:
			// The independent radar has a wider lateral acceptance than
			// the camera model, so it keeps tracking the lead during a
			// lateral excursion.
			radarLead, radarGap, radarOK := p.world.LeadWithin(1.1)
			in = aebs.Inputs{EgoSpeed: egoState.V, LeadValid: radarOK}
			if radarOK {
				in.RD = radarGap
				in.RS = egoState.V - radarLead.State().V
			}
		default: // compromised: same (possibly attacked) data as the ADAS
			in = aebs.Inputs{
				EgoSpeed:  out.EgoSpeed,
				LeadValid: out.LeadValid,
				RD:        out.LeadDistance,
				RS:        out.RelSpeed(),
			}
		}
		aebDec = p.aeb.Update(t, in)
		if aebDec.Braking() && p.outcome.AEBBrakeAt < 0 {
			p.outcome.AEBBrakeAt = t
		}
		if aebDec.FCW && p.outcome.FCWAt < 0 {
			p.outcome.FCWAt = t
		}
	}

	// 4. Human driver observes ground truth.
	var iv driver.Intervention
	if p.drv != nil {
		ob := p.driverObservation(t, egoState, trueGap, trueLeadOK, trueLead, aebDec.FCW)
		iv = p.drv.Update(ob, dt)
		if iv.BrakeActive && p.outcome.DriverBrakeAt < 0 {
			p.outcome.DriverBrakeAt = t
		}
		if iv.SteerActive && p.outcome.DriverSteerAt < 0 {
			p.outcome.DriverSteerAt = t
		}
	}

	// 5. ML mitigation on fault-free (redundant-sensor) inputs.
	mlCmd := opCmd
	mlActive := false
	if p.mit != nil {
		frame := p.mlFrame(egoState, trueGap, trueLeadOK)
		mlCmd, mlActive = p.mit.Update(t, frame, opCmd)
		if mlActive && p.outcome.MLRecoveryAt < 0 {
			p.outcome.MLRecoveryAt = t
		}
	}

	// 6. Arbitration and actuation.
	res := p.arbiter.Arbitrate(safety.Inputs{
		ADAS:          opCmd,
		ML:            mlCmd,
		MLActive:      mlActive,
		Monitor:       monDec.Override,
		MonitorActive: monDec.Active,
		Driver:        iv,
		AEB:           aebDec,
		DT:            dt,
	})
	if p.opts.RecordMLFrames {
		p.mlPoints = append(p.mlPoints, TrainingPoint{
			Frame:    p.mlFrame(egoState, trueGap, trueLeadOK),
			Executed: res.Cmd,
		})
	}
	p.lastCmd = res.Cmd
	p.world.Step(res.Cmd)
	p.step++

	// 7. Monitors and trace.
	p.observe(t, out, res, faultActive, aebDec, iv, mlActive, monDec.Active)
}

// driverObservation builds the driver's ground-truth view.
func (p *Platform) driverObservation(t float64, es vehicle.State, gap float64,
	leadOK bool, lead *world.Actor, fcw bool) driver.Observation {
	left, right := p.road.LaneLineDistances(es.D)
	half := p.world.Ego().Dyn.Params().Width / 2
	laneCentre := p.road.LaneCenterOffset(p.road.LaneForOffset(es.D))
	ob := driver.Observation{
		T:             t,
		EgoSpeed:      es.V,
		EgoAccel:      es.Accel,
		SpeedLimit:    p.opts.Scenario.SpeedLimit,
		LeadValid:     leadOK,
		LaneLineLeft:  left - half,
		LaneLineRight: right - half,
		LaneOffset:    es.D - laneCentre,
		Psi:           es.Psi,
		RoadCurvature: p.road.CurvatureAt(es.S),
		FCW:           fcw,
		CutIn:         p.cutInVisible(),
	}
	if leadOK {
		ob.LeadGap = gap
		ob.LeadSpeed = lead.State().V
	}
	return ob
}

// cutInVisible reports a neighbouring vehicle moving into the ego lane,
// as the human driver would see it.
func (p *Platform) cutInVisible() bool {
	es := p.world.Ego().State()
	lw := p.road.LaneWidth()
	for _, a := range p.world.Actors() {
		as := a.State()
		ds := as.S - es.S
		if ds <= 0 || ds > 60 {
			continue
		}
		dd := as.D - es.D
		if math.Abs(dd) < lw*0.6 || math.Abs(dd) > lw*1.5 {
			continue
		}
		latVel := as.V * math.Sin(as.Psi)
		if (dd > 0 && latVel < -0.3) || (dd < 0 && latVel > 0.3) {
			return true
		}
	}
	return false
}

// mlFrame builds the mitigation baseline's fault-free input frame.
func (p *Platform) mlFrame(es vehicle.State, gap float64, leadOK bool) mlmit.Frame {
	left, right := p.road.LaneLineDistances(es.D)
	rd := p.percep.Config().DetectionRange
	if leadOK && gap < rd {
		rd = gap
	}
	return mlmit.Frame{
		EgoSpeed:      es.V,
		LeadDistance:  rd,
		LaneLineLeft:  left,
		LaneLineRight: right,
		PrevAccel:     p.lastCmd.Accel,
		PrevCurvature: p.lastCmd.Curvature,
	}
}
