package core

import (
	"testing"

	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/scenario"
)

// TestMonitorPreventsRDAttack verifies the runtime monitor catches the
// tiered RD attack's discontinuities and brakes conservatively.
func TestMonitorPreventsRDAttack(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		Fault:         fi.DefaultParams(fi.TargetRelDistance),
		Interventions: InterventionSet{Monitor: true},
		Seed:          1,
		Steps:         6000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.MonitorAt < 0 {
		t.Fatal("monitor never activated under the RD attack")
	}
	if res.Outcome.Accident == metrics.AccidentA1 {
		t.Errorf("monitor should have prevented the forward collision (activated t=%.1f, accident t=%.1f)",
			res.Outcome.MonitorAt, res.Outcome.AccidentAt)
	}
}

// TestMonitorBenignQuiet verifies the monitor does not fire on fault-free
// driving.
func TestMonitorBenignQuiet(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		Interventions: InterventionSet{Monitor: true},
		Seed:          2,
		Steps:         6000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentNone {
		t.Errorf("benign run with monitor crashed: %v", res.Outcome.Accident)
	}
	if res.Outcome.MonitorAt >= 0 {
		t.Errorf("monitor false positive at t=%.1f", res.Outcome.MonitorAt)
	}
}

// TestLeadRemovalAttack verifies the extension attack runs end-to-end and
// is dangerous without mitigation.
func TestLeadRemovalAttack(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		ExtendedFault: fi.TargetLeadRemoval,
		Seed:          1,
		Steps:         6000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.FaultFirstAt < 0 {
		t.Fatal("extension fault never activated")
	}
	if res.Outcome.Accident != metrics.AccidentA1 {
		t.Errorf("lead removal should cause a forward collision, got %v", res.Outcome.Accident)
	}
}

// TestStealthyAttackEvadesJumpCheck: the stealthy RD attack must not be
// caught by the monitor's discontinuity check alone, but the windowed
// kinematic check should still flag it eventually.
func TestStealthyAttackOutcome(t *testing.T) {
	bare := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		ExtendedFault: fi.TargetStealthyDistance,
		Seed:          1,
		Steps:         8000,
	}
	res, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.FaultFirstAt < 0 {
		t.Fatal("stealthy fault never activated")
	}
	withMon := bare
	withMon.Interventions = InterventionSet{Monitor: true}
	res2, err := Run(withMon)
	if err != nil {
		t.Fatal(err)
	}
	// The monitor's windowed kinematic check should notice the drift.
	if res2.Outcome.MonitorAt < 0 {
		t.Log("monitor did not flag the stealthy attack (documented evasion)")
	}
}

// TestLaneShiftAttackCausesDrift verifies the lane-shift extension drags
// the vehicle sideways.
func TestLaneShiftAttackCausesDrift(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 230),
		ExtendedFault: fi.TargetLaneShift,
		Seed:          1,
		Steps:         5000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.FaultFirstAt < 0 {
		t.Fatal("lane-shift fault never activated")
	}
	if !res.Outcome.HazardH2 && res.Outcome.Accident != metrics.AccidentA2 {
		t.Error("lane shift should at least cause an H2 hazard")
	}
}

// TestCombinedClassicAndExtendedFault checks that both engines can run in
// the same simulation.
func TestCombinedClassicAndExtendedFault(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		Fault:         fi.DefaultParams(fi.TargetCurvature),
		ExtendedFault: fi.TargetStealthyDistance,
		Seed:          1,
		Steps:         4000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.FaultFirstAt < 0 {
		t.Error("combined faults never activated")
	}
}

// TestMonitorLabel checks the intervention label includes the monitor.
func TestMonitorLabel(t *testing.T) {
	if got := (InterventionSet{Monitor: true}).Label(); got != "monitor" {
		t.Errorf("label = %s", got)
	}
}
