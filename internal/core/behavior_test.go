package core

import (
	"testing"

	"adasim/internal/aebs"
	"adasim/internal/fi"
	"adasim/internal/metrics"
	"adasim/internal/panda"
	"adasim/internal/road"
	"adasim/internal/scenario"
)

// TestAEBStandstillHold reproduces the S4 chain end-to-end: the lead
// brakes to a stop, the independent AEBS stops the ego behind it, and the
// standstill hold keeps the ego parked even though close-range perception
// dropout makes the ADAS command acceleration.
func TestAEBStandstillHold(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S4, 60),
		Fault:         fi.DefaultParams(fi.TargetRelDistance),
		Interventions: InterventionSet{AEB: aebs.SourceIndependent},
		Seed:          3,
		Steps:         6000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentNone {
		t.Fatalf("independent AEBS should hold at standstill, got %v at %v",
			res.Outcome.Accident, res.Outcome.AccidentAt)
	}
	if res.Outcome.AEBBrakeAt < 0 {
		t.Fatal("AEB never braked")
	}
}

// TestCutInScenarioDriverReacts verifies the S5 cut-in chain: the driver
// notices the merging vehicle and brakes.
func TestCutInScenarioDriverReacts(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S5, 60),
		Interventions: InterventionSet{Driver: true},
		Seed:          1,
		Steps:         4000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.DriverBrakeAt < 0 {
		t.Error("driver should have reacted to the cut-in")
	}
}

// TestBenignAllScenarios checks that fault-free driving is mostly safe:
// only S4 (abrupt lead stop) is allowed to end in an accident, per the
// paper's Table IV.
func TestBenignAllScenarios(t *testing.T) {
	for _, id := range scenario.All() {
		res, err := Run(Options{
			Scenario: scenario.DefaultSpec(id, 60),
			Seed:     2,
			Steps:    6000,
		})
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if res.Outcome.Accident != metrics.AccidentNone && id != scenario.S4 {
			t.Errorf("%v: benign accident %v at %v", id, res.Outcome.Accident, res.Outcome.AccidentAt)
		}
	}
}

// TestMapSelection verifies the straight map is usable too.
func TestMapSelection(t *testing.T) {
	res, err := Run(Options{
		Scenario: scenario.DefaultSpec(scenario.S1, 60),
		Map:      road.MapStraight,
		Seed:     1,
		Steps:    3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Accident != metrics.AccidentNone {
		t.Errorf("straight-map benign run crashed: %v", res.Outcome.Accident)
	}
}

// TestMixedAttackPriorityConflict reproduces Observation 4 at the single-
// run level: with AEB outranking the driver, suppressed steering loses a
// lateral accident the driver alone prevents.
func TestMixedAttackPriorityConflict(t *testing.T) {
	base := Options{
		Scenario: scenario.DefaultSpec(scenario.S1, 60),
		Fault:    fi.DefaultParams(fi.TargetMixed),
		Seed:     4,
		Steps:    5000,
	}
	driverOnly := base
	driverOnly.Interventions = InterventionSet{Driver: true}
	withAEB := base
	withAEB.Interventions = InterventionSet{Driver: true, AEB: aebs.SourceIndependent}

	r1, err := Run(driverOnly)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(withAEB)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome.Accident != metrics.AccidentNone {
		t.Skipf("seed no longer driver-preventable: %v", r1.Outcome.Accident)
	}
	if r2.Outcome.Accident == metrics.AccidentNone {
		t.Skip("AEB run also prevented; conflict not visible at this seed")
	}
	// Reaching here demonstrates the conflict: driver-only prevented,
	// driver+AEB did not.
}

// TestH2PrecedesA2 checks hazard ordering: the too-close-to-line hazard
// must be flagged before the lane-departure accident.
func TestH2PrecedesA2(t *testing.T) {
	opts := Options{
		Scenario: scenario.DefaultSpec(scenario.S1, 230),
		Fault:    fi.DefaultParams(fi.TargetCurvature),
		Seed:     1,
		Steps:    4000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcome
	if o.Accident != metrics.AccidentA2 {
		t.Skipf("no A2 at this seed: %v", o.Accident)
	}
	if !o.HazardH2 || o.H2At > o.AccidentAt {
		t.Errorf("H2 (%v) should precede A2 (%v)", o.H2At, o.AccidentAt)
	}
}

// TestFCWPrecedesAEBBraking checks the escalation order of the AEBS.
func TestFCWPrecedesAEBBraking(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		Interventions: InterventionSet{AEB: aebs.SourceIndependent},
		Seed:          1,
		Steps:         3000,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcome
	if o.FCWAt < 0 {
		t.Skip("FCW never fired at this seed")
	}
	if o.AEBBrakeAt >= 0 && o.AEBBrakeAt < o.FCWAt {
		t.Errorf("AEB braking (%v) before FCW (%v)", o.AEBBrakeAt, o.FCWAt)
	}
}

// TestCustomPandaLimits verifies the configurable firmware bounds.
func TestCustomPandaLimits(t *testing.T) {
	opts := Options{
		Scenario:      scenario.DefaultSpec(scenario.S1, 60),
		Interventions: InterventionSet{SafetyCheck: true},
		Seed:          1,
		Steps:         3000,
	}
	strict, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	loose := opts
	limits := pandaLoose()
	loose.Panda = &limits
	l, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	if l.CheckerBlocked >= strict.CheckerBlocked {
		t.Errorf("looser bounds should block fewer commands: %d vs %d",
			l.CheckerBlocked, strict.CheckerBlocked)
	}
}

// pandaLoose returns firmware limits with a deep deceleration bound.
func pandaLoose() (l panda.Limits) {
	l = panda.DefaultLimits()
	l.MaxDecel = 9.0
	l.MaxCurvatureRate = 0.5
	return l
}

// TestFullMatrixSmoke runs every scenario x fault combination briefly and
// asserts the platform neither errors nor produces impossible outcomes.
func TestFullMatrixSmoke(t *testing.T) {
	for _, id := range scenario.All() {
		for _, target := range []fi.Target{fi.TargetNone, fi.TargetRelDistance,
			fi.TargetCurvature, fi.TargetMixed} {
			var fault fi.Params
			if target != fi.TargetNone {
				fault = fi.DefaultParams(target)
			}
			res, err := Run(Options{
				Scenario: scenario.DefaultSpec(id, 60),
				Fault:    fault,
				Seed:     7,
				Steps:    2500,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", id, target, err)
			}
			o := res.Outcome
			if o.Steps == 0 || o.Duration <= 0 {
				t.Errorf("%v/%v: empty run", id, target)
			}
			if o.Accident != metrics.AccidentNone && o.AccidentAt < 0 {
				t.Errorf("%v/%v: accident without a timestamp", id, target)
			}
			if o.AccidentAt > o.Duration+1e-9 {
				t.Errorf("%v/%v: accident after run end", id, target)
			}
		}
	}
}
