package core

import (
	"math"

	"adasim/internal/aebs"
	"adasim/internal/driver"
	"adasim/internal/metrics"
	"adasim/internal/perception"
	"adasim/internal/safety"
)

// observe runs the hazard/accident monitors for the step that just
// executed and records the trace sample.
func (p *Platform) observe(t float64, out perception.Output, res safety.Result,
	faultActive bool, aebDec aebs.Decision, iv driver.Intervention,
	mlActive, monitorActive bool) {

	es := p.world.Ego().State()
	params := p.world.Ego().Dyn.Params()
	lead, gap, leadOK := p.world.Lead()

	// True TTC.
	ttc := math.Inf(1)
	if leadOK {
		rs := es.V - lead.State().V
		if rs > 0 {
			ttc = gap / rs
		}
	}

	// Body-edge distance to the nearest lane line.
	left, right := p.road.LaneLineDistances(es.D)
	lineMin := math.Min(left, right) - params.Width/2

	// Benign-performance metrics.
	if ttc < p.outcome.MinTTC {
		p.outcome.MinTTC = ttc
	}
	tfcw := p.aebsCfg.ReactTime + es.V/p.aebsCfg.DriverDecel
	if tfcw < p.outcome.MinTFCW {
		p.outcome.MinTFCW = tfcw
	}
	if lineMin < p.outcome.MinLaneLineDist {
		p.outcome.MinLaneLineDist = lineMin
	}
	brakeFrac := math.Max(0, -res.Cmd.Accel) / params.MaxBrake
	if brakeFrac > p.outcome.HardestBrake {
		p.outcome.HardestBrake = brakeFrac
	}
	if leadOK && gap < 60 && es.V > 2 && math.Abs(es.V-lead.State().V) < 0.75 {
		p.followSum += gap
		p.followCount++
	}

	// Hazards.
	if leadOK && gap < params.Length && p.outcome.H1At < 0 {
		p.outcome.HazardH1 = true
		p.outcome.H1At = t
	}
	if lineMin < 0.1 && p.outcome.H2At < 0 {
		p.outcome.HazardH2 = true
		p.outcome.H2At = t
	}

	// Accidents.
	if p.outcome.Accident == metrics.AccidentNone {
		if hit := p.world.AnyCollision(); hit != nil {
			hs := hit.State()
			forward := hs.S >= es.S && math.Abs(hs.D-es.D) < p.road.LaneWidth()*0.5
			if forward {
				p.outcome.Accident = metrics.AccidentA1
			} else {
				p.outcome.Accident = metrics.AccidentA2
			}
			p.outcome.AccidentAt = t
		} else if p.egoOutOfOwnLane(es.D) || p.world.EgoOffRoad() {
			p.outcome.Accident = metrics.AccidentA2
			p.outcome.AccidentAt = t
		}
		if p.outcome.Accident != metrics.AccidentNone && !p.opts.ContinueAfterAccident {
			p.finished = true
		}
	}

	// Route end: stop before running off the built map.
	if es.S > p.road.Length()-100 {
		p.finished = true
	}

	if p.trace != nil {
		perceivedRD := -1.0
		if out.LeadValid {
			perceivedRD = out.LeadDistance
		}
		p.trace.Append(metrics.Sample{
			T:             t,
			EgoS:          es.S,
			EgoD:          es.D,
			EgoV:          es.V,
			EgoAccel:      es.Accel,
			LeadValid:     leadOK,
			LeadGap:       gap,
			PerceivedRD:   perceivedRD,
			TTC:           ttc,
			LaneLineMin:   lineMin,
			CmdAccel:      res.Cmd.Accel,
			CmdCurvature:  res.Cmd.Curvature,
			LongSource:    res.LongSource,
			LatSource:     res.LatSource,
			FaultActive:   faultActive,
			FCW:           aebDec.FCW,
			AEBBraking:    aebDec.Braking(),
			DriverBrake:   iv.BrakeActive,
			DriverSteer:   iv.SteerActive,
			MLActive:      mlActive,
			MonitorActive: monitorActive,
		})
	}
}

// egoOutOfOwnLane reports whether the ego centre has crossed a lane line
// of its original (reference) lane — the paper's A2 "driving out of the
// lane" condition.
func (p *Platform) egoOutOfOwnLane(d float64) bool {
	return math.Abs(d) > p.road.LaneWidth()/2
}

// finalize fills run-level summary fields and releases the run's ML
// batch-group membership so hub peers stop waiting for it.
func (p *Platform) finalize() {
	p.finished = true
	p.outcome.Steps = p.step
	p.outcome.Duration = p.world.Time()
	if p.followCount > 0 {
		p.outcome.FollowingDistance = p.followSum / float64(p.followCount)
	}
	if p.mit != nil {
		p.mit.EndRun()
	}
}
