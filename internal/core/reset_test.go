package core

import (
	"testing"

	"adasim/internal/aebs"
	"adasim/internal/fi"
	"adasim/internal/mlmit"
	"adasim/internal/nn"
	"adasim/internal/scenario"
)

// resetTestNet builds a small (untrained) mitigation network; Reset
// determinism must hold regardless of the weights.
func resetTestNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.NewNetwork(mlmit.FeatureDim, []int{8, 4}, mlmit.OutputDim, 5)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestResetBitIdentical verifies the Reset contract: a reset platform
// with seed S produces a bit-identical trajectory (outcome, full trace,
// monitor events) to a freshly constructed platform with seed S — across
// scenarios, with a fault target active and the full intervention stack
// (driver, checker, AEBS, runtime monitor, ML mitigation) engaged.
func TestResetBitIdentical(t *testing.T) {
	net := resetTestNet(t)
	scenarios := []struct {
		name string
		opts Options
	}{
		{"S1-mixed-fault", Options{
			Scenario: scenario.DefaultSpec(scenario.S1, 60),
			Fault:    fi.DefaultParams(fi.TargetMixed),
			Interventions: InterventionSet{
				Driver: true, SafetyCheck: true, AEB: aebs.SourceIndependent,
				Monitor: true, ML: true, MLNet: net,
			},
			Steps:       2500,
			RecordTrace: true,
		}},
		{"S4-rd-fault", Options{
			Scenario: scenario.DefaultSpec(scenario.S4, 110),
			Fault:    fi.DefaultParams(fi.TargetRelDistance),
			Interventions: InterventionSet{
				Driver: true, AEB: aebs.SourceCompromised,
			},
			Steps:       2500,
			RecordTrace: true,
		}},
		{"S5-fault-free", Options{
			Scenario:    scenario.DefaultSpec(scenario.S5, 60),
			Steps:       2000,
			RecordTrace: true,
		}},
	}

	// One long-lived platform, reset from run to run the way the
	// campaign worker pool uses it; dirty it with an unrelated run first
	// (different scenario, seed, and road friction, so even the road
	// rebuild path is crossed).
	reused, err := NewPlatform(Options{
		Scenario:      scenario.DefaultSpec(scenario.S3, 90),
		FrictionScale: 0.5,
		Interventions: InterventionSet{Driver: true},
		Seed:          999,
		Steps:         500,
	})
	if err != nil {
		t.Fatal(err)
	}
	reused.Run()

	for _, tc := range scenarios {
		for _, seed := range []int64{1, 42} {
			opts := tc.opts
			opts.Seed = seed
			fresh, err := NewPlatform(opts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			want := fresh.Run()
			if err := reused.Reset(opts, seed); err != nil {
				t.Fatalf("%s seed %d: Reset: %v", tc.name, seed, err)
			}
			got := reused.Run()

			if got.Outcome != want.Outcome {
				t.Errorf("%s seed %d: outcome mismatch\nfresh:  %+v\nreused: %+v",
					tc.name, seed, want.Outcome, got.Outcome)
			}
			if got.CheckerBlocked != want.CheckerBlocked {
				t.Errorf("%s seed %d: CheckerBlocked %d != %d",
					tc.name, seed, got.CheckerBlocked, want.CheckerBlocked)
			}
			if got.Trace.Len() != want.Trace.Len() {
				t.Fatalf("%s seed %d: trace length %d != %d",
					tc.name, seed, got.Trace.Len(), want.Trace.Len())
			}
			for i := range want.Trace.Samples {
				if got.Trace.Samples[i] != want.Trace.Samples[i] {
					t.Fatalf("%s seed %d: trace diverges at step %d\nfresh:  %+v\nreused: %+v",
						tc.name, seed, i, want.Trace.Samples[i], got.Trace.Samples[i])
				}
			}
		}
	}
}

// TestResetRejectsInvalidOptions ensures Reset validates like NewPlatform.
func TestResetRejectsInvalidOptions(t *testing.T) {
	p, err := NewPlatform(Options{Scenario: scenario.DefaultSpec(scenario.S1, 60), Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	bad := Options{} // zero scenario spec fails validation
	if err := p.Reset(bad, 1); err == nil {
		t.Error("Reset with invalid options should fail")
	}
}
