package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMPHConversionKnownValues(t *testing.T) {
	tests := []struct {
		mph  float64
		want float64
	}{
		{0, 0},
		{30, 13.4112},
		{40, 17.8816},
		{50, 22.352},
		{60, 26.8224},
	}
	for _, tt := range tests {
		if got := MPHToMS(tt.mph); !NearlyEqual(got, tt.want, 1e-9) {
			t.Errorf("MPHToMS(%v) = %v, want %v", tt.mph, got, tt.want)
		}
	}
}

func TestMPHRoundTrip(t *testing.T) {
	f := func(mph float64) bool {
		if math.IsNaN(mph) || math.Abs(mph) > 1e9 {
			return true
		}
		return NearlyEqual(MSToMPH(MPHToMS(mph)), mph, 1e-6*math.Max(1, math.Abs(mph)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKPHRoundTrip(t *testing.T) {
	f := func(kph float64) bool {
		if math.IsNaN(kph) || math.Abs(kph) > 1e9 {
			return true
		}
		return NearlyEqual(MSToKPH(KPHToMS(kph)), kph, 1e-6*math.Max(1, math.Abs(kph)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, deg := range []float64{-180, -90, -45, 0, 30, 90, 179.5} {
		if got := RadToDeg(DegToRad(deg)); !NearlyEqual(got, deg, 1e-9) {
			t.Errorf("round trip %v got %v", deg, got)
		}
	}
	if !NearlyEqual(DegToRad(180), math.Pi, 1e-12) {
		t.Errorf("DegToRad(180) = %v, want pi", DegToRad(180))
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
		{-3.5, -3.5, 2, -3.5},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampProperties(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		// Result lies within bounds and clamping is idempotent.
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearlyEqual(t *testing.T) {
	if !NearlyEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("expected nearly equal")
	}
	if NearlyEqual(1.0, 1.1, 1e-3) {
		t.Error("expected not nearly equal")
	}
}
