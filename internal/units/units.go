// Package units provides unit conversions and physical constants shared by
// the simulation substrates. All internal computation uses SI units
// (metres, seconds, radians); this package converts at the boundaries where
// the paper specifies quantities in mph or degrees.
package units

import "math"

// Physical constants.
const (
	// Gravity is standard gravitational acceleration in m/s^2.
	Gravity = 9.81

	// MetersPerMile is the length of one mile in metres.
	MetersPerMile = 1609.344

	// SecondsPerHour is the number of seconds in one hour.
	SecondsPerHour = 3600.0
)

// MPHToMS converts miles per hour to metres per second.
func MPHToMS(mph float64) float64 {
	return mph * MetersPerMile / SecondsPerHour
}

// MSToMPH converts metres per second to miles per hour.
func MSToMPH(ms float64) float64 {
	return ms * SecondsPerHour / MetersPerMile
}

// KPHToMS converts kilometres per hour to metres per second.
func KPHToMS(kph float64) float64 {
	return kph * 1000.0 / SecondsPerHour
}

// MSToKPH converts metres per second to kilometres per hour.
func MSToKPH(ms float64) float64 {
	return ms * SecondsPerHour / 1000.0
}

// DegToRad converts degrees to radians.
func DegToRad(deg float64) float64 {
	return deg * math.Pi / 180.0
}

// RadToDeg converts radians to degrees.
func RadToDeg(rad float64) float64 {
	return rad * 180.0 / math.Pi
}

// Clamp limits v to the closed interval [lo, hi]. It requires lo <= hi.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NearlyEqual reports whether a and b differ by at most eps.
func NearlyEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
