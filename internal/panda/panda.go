// Package panda replicates the firmware safety checking that OpenPilot
// performs on output control commands through the PANDA CAN interface
// device. Since PANDA is unavailable in simulation, the paper implements
// (and this package reproduces) a software constraint checker that blocks
// control commands outside a predefined safe range, with acceleration
// bounds of +2.0 / -3.5 m/s^2 per the PANDA sources and ISO 22179.
package panda

import (
	"fmt"

	"adasim/internal/units"
	"adasim/internal/vehicle"
)

// Limits are the firmware safety bounds.
type Limits struct {
	// MaxAccel / MaxDecel bound longitudinal acceleration commands
	// (m/s^2; MaxDecel is positive and applied as a lower bound of
	// -MaxDecel).
	MaxAccel float64
	MaxDecel float64
	// MaxCurvature bounds the commanded path curvature (1/m),
	// standing in for PANDA's steering torque limit.
	MaxCurvature float64
	// MaxCurvatureRate bounds the commanded curvature slew (1/m per
	// second), standing in for PANDA's torque rate limit.
	MaxCurvatureRate float64
}

// DefaultLimits returns the ISO 22179 / PANDA bounds used by the paper.
func DefaultLimits() Limits {
	return Limits{
		MaxAccel:         2.0,
		MaxDecel:         3.5,
		MaxCurvature:     0.2,
		MaxCurvatureRate: 0.05,
	}
}

// Validate reports whether the limits are usable.
func (l Limits) Validate() error {
	if l.MaxAccel <= 0 || l.MaxDecel <= 0 {
		return fmt.Errorf("panda: accel limits must be positive: %+v", l)
	}
	if l.MaxCurvature <= 0 || l.MaxCurvatureRate <= 0 {
		return fmt.Errorf("panda: curvature limits must be positive: %+v", l)
	}
	return nil
}

// Checker is a stateful firmware safety checker.
type Checker struct {
	limits    Limits
	lastKappa float64
	blocked   int
}

// New constructs a Checker.
func New(limits Limits) (*Checker, error) {
	if err := limits.Validate(); err != nil {
		return nil, err
	}
	return &Checker{limits: limits}, nil
}

// Limits returns the configured bounds.
func (c *Checker) Limits() Limits { return c.limits }

// Blocked returns how many commands have been modified or blocked so far.
func (c *Checker) Blocked() int { return c.blocked }

// Check filters one command. Out-of-range values are clamped to the safe
// range (the firmware blocks the unsafe message; the actuator holds the
// nearest safe value). dt is the control period used for the rate limit.
// The second return value reports whether the command was modified.
func (c *Checker) Check(cmd vehicle.Command, dt float64) (vehicle.Command, bool) {
	safe := cmd
	safe.Accel = units.Clamp(cmd.Accel, -c.limits.MaxDecel, c.limits.MaxAccel)
	safe.Curvature = units.Clamp(cmd.Curvature, -c.limits.MaxCurvature, c.limits.MaxCurvature)
	if dt > 0 {
		maxStep := c.limits.MaxCurvatureRate * dt
		safe.Curvature = units.Clamp(safe.Curvature, c.lastKappa-maxStep, c.lastKappa+maxStep)
	}
	c.lastKappa = safe.Curvature
	modified := safe != cmd
	if modified {
		c.blocked++
	}
	return safe, modified
}

// Reset clears the rate-limit memory and counters.
func (c *Checker) Reset() {
	c.lastKappa = 0
	c.blocked = 0
}
