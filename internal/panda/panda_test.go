package panda

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adasim/internal/vehicle"
)

func newChecker(t *testing.T) *Checker {
	t.Helper()
	c, err := New(DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLimitsValidate(t *testing.T) {
	if err := DefaultLimits().Validate(); err != nil {
		t.Fatalf("default limits invalid: %v", err)
	}
	bad := []func(*Limits){
		func(l *Limits) { l.MaxAccel = 0 },
		func(l *Limits) { l.MaxDecel = -1 },
		func(l *Limits) { l.MaxCurvature = 0 },
		func(l *Limits) { l.MaxCurvatureRate = 0 },
	}
	for i, mod := range bad {
		l := DefaultLimits()
		mod(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestISO22179Bounds(t *testing.T) {
	// The paper/PANDA bounds: accel within [-3.5, +2.0] m/s^2.
	l := DefaultLimits()
	if l.MaxAccel != 2.0 || l.MaxDecel != 3.5 {
		t.Errorf("bounds = +%v/-%v, want +2.0/-3.5", l.MaxAccel, l.MaxDecel)
	}
}

func TestClampAccel(t *testing.T) {
	c := newChecker(t)
	out, modified := c.Check(vehicle.Command{Accel: -9}, 0.01)
	if !modified || out.Accel != -3.5 {
		t.Errorf("hard braking should clamp to -3.5, got %v (mod=%v)", out.Accel, modified)
	}
	c2 := newChecker(t)
	out, modified = c2.Check(vehicle.Command{Accel: 5}, 0.01)
	if !modified || out.Accel != 2.0 {
		t.Errorf("hard accel should clamp to 2.0, got %v", out.Accel)
	}
	c3 := newChecker(t)
	out, modified = c3.Check(vehicle.Command{Accel: 1.0}, 0.01)
	if modified || out.Accel != 1.0 {
		t.Errorf("in-range command should pass unchanged, got %v (mod=%v)", out.Accel, modified)
	}
}

func TestCurvatureRateLimit(t *testing.T) {
	c := newChecker(t)
	dt := 0.01
	out, _ := c.Check(vehicle.Command{Curvature: 0.1}, dt)
	maxStep := DefaultLimits().MaxCurvatureRate * dt
	if out.Curvature > maxStep+1e-12 {
		t.Errorf("first-step curvature %v exceeds rate limit %v", out.Curvature, maxStep)
	}
	prev := out.Curvature
	for i := 0; i < 50; i++ {
		out, _ = c.Check(vehicle.Command{Curvature: 0.1}, dt)
		if out.Curvature-prev > maxStep+1e-12 {
			t.Fatalf("rate limit violated at step %d", i)
		}
		prev = out.Curvature
	}
}

func TestBlockedCounter(t *testing.T) {
	c := newChecker(t)
	c.Check(vehicle.Command{Accel: -9}, 0.01)
	c.Check(vehicle.Command{Accel: 0}, 0.01)
	c.Check(vehicle.Command{Accel: 7}, 0.01)
	if got := c.Blocked(); got != 2 {
		t.Errorf("Blocked = %d, want 2", got)
	}
	c.Reset()
	if c.Blocked() != 0 {
		t.Error("Reset should clear counter")
	}
}

func TestOutputAlwaysWithinLimitsProperty(t *testing.T) {
	c := newChecker(t)
	l := DefaultLimits()
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		cmd := vehicle.Command{
			Accel:     (rng.Float64()*2 - 1) * 20,
			Curvature: (rng.Float64()*2 - 1) * 1,
		}
		out, _ := c.Check(cmd, 0.01)
		return out.Accel >= -l.MaxDecel-1e-9 && out.Accel <= l.MaxAccel+1e-9 &&
			math.Abs(out.Curvature) <= l.MaxCurvature+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCheckIdempotentOnSafeCommands(t *testing.T) {
	c := newChecker(t)
	cmd := vehicle.Command{Accel: 1.2, Curvature: 0.0001}
	out, modified := c.Check(cmd, 0.01)
	if modified {
		t.Errorf("safe command modified: %+v -> %+v", cmd, out)
	}
	out2, modified2 := c.Check(out, 0.01)
	if modified2 || out2 != out {
		t.Error("checking a checked command should be a no-op")
	}
}
