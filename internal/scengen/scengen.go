// Package scengen defines parametric scenario families: generators that
// generalise the paper's six scripted NHTSA pre-crash behaviours into
// continuous, typed parameter spaces. A family deterministically
// instantiates a parameter assignment into a generated scenario.Spec
// (plus the weather/friction axis), which plugs into core.Options exactly
// like a catalogue scenario — the exploration engine (internal/explore)
// sweeps and searches these spaces at campaign scale.
package scengen

import (
	"fmt"
	"math"
	"sort"

	"adasim/internal/road"
	"adasim/internal/scenario"
	"adasim/internal/units"
)

// Param describes one axis of a family's parameter space. The json tags
// define the wire format of the service's extended scenario catalogue.
type Param struct {
	Name    string  `json:"name"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Default float64 `json:"default"`
	Unit    string  `json:"unit,omitempty"`
	// Integer marks a count-valued axis; sampled values are rounded to
	// the nearest integer at instantiation.
	Integer     bool   `json:"integer,omitempty"`
	Description string `json:"description,omitempty"`
}

// Family is a parametric scenario generator: a named, typed parameter box
// and a deterministic build function over it.
type Family struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Params      []Param `json:"params"`

	build func(p map[string]float64) (Instance, error)
}

// Instance is one fully instantiated member of a family: a generated
// scenario spec plus the friction (weather) axis, which lives on
// core.Options rather than the scenario.
type Instance struct {
	Scenario      scenario.Spec `json:"scenario"`
	FrictionScale float64       `json:"friction_scale"`
}

// Param returns the named parameter's spec.
func (f *Family) Param(name string) (Param, bool) {
	for _, p := range f.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Resolve canonicalises a parameter assignment against the family's
// space: defaults fill in missing parameters, unknown names, non-finite
// values, and out-of-bounds values are rejected, and integer axes are
// rounded. Two assignments describing the same member of the family —
// with or without explicitly spelling out defaults, with 3.6 or 4 leads
// — resolve to an identical map, so downstream content-derived
// identities (run seeds, cache keys) coincide on purpose.
func (f *Family) Resolve(params map[string]float64) (map[string]float64, error) {
	resolved := make(map[string]float64, len(f.Params))
	for _, p := range f.Params {
		resolved[p.Name] = p.Default
	}
	// Iterate in sorted order so the first error is deterministic too.
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := params[name]
		p, ok := f.Param(name)
		if !ok {
			return nil, fmt.Errorf("scengen: family %s has no parameter %q", f.Name, name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("scengen: %s.%s must be finite, got %v", f.Name, name, v)
		}
		if p.Integer {
			v = math.Round(v)
		}
		if v < p.Min || v > p.Max {
			return nil, fmt.Errorf("scengen: %s.%s = %v outside [%v, %v]", f.Name, name, v, p.Min, p.Max)
		}
		resolved[name] = v
	}
	return resolved, nil
}

// Instantiate resolves the parameter assignment (see Resolve) and builds
// the scenario. Instantiation is deterministic: the same assignment
// always yields a deeply equal Instance.
func (f *Family) Instantiate(params map[string]float64) (Instance, error) {
	resolved, err := f.Resolve(params)
	if err != nil {
		return Instance{}, err
	}
	inst, err := f.build(resolved)
	if err != nil {
		return Instance{}, err
	}
	if err := inst.Scenario.Validate(); err != nil {
		return Instance{}, fmt.Errorf("scengen: %s instantiated an invalid scenario: %w", f.Name, err)
	}
	return inst, nil
}

// The families' shared axes.
var (
	mph30 = units.MPHToMS(30)
	mph50 = units.MPHToMS(50)
)

func sharedParams() []Param {
	return []Param{
		{Name: "ego_speed", Min: 5, Max: 45, Default: mph50, Unit: "m/s",
			Description: "ego initial/cruise speed (also the posted limit)"},
		{Name: "initial_gap", Min: 10, Max: 300, Default: 60, Unit: "m",
			Description: "initial bumper-to-bumper gap to the nearest lead"},
		{Name: "friction_scale", Min: 0.1, Max: 1, Default: 1, Unit: "",
			Description: "road friction multiplier (1 = dry, lower = weather)"},
	}
}

// baseSpec assembles the shared scenario fields of every family.
func baseSpec(p map[string]float64, gen *scenario.GenSpec) scenario.Spec {
	return scenario.Spec{
		ID:         scenario.IDGenerated,
		EgoSpeed:   p["ego_speed"],
		InitialGap: p["initial_gap"],
		SpeedLimit: p["ego_speed"],
		Generated:  gen,
	}
}

// families is the registry, in catalogue order.
var families = []*Family{leadProfileFamily(), cutInFamily(), convoyFamily()}

// Families returns the family catalogue in stable order. Callers must
// not mutate the returned slice or the families.
func Families() []*Family { return families }

// ByName looks a family up by its catalogue name.
func ByName(name string) (*Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// leadProfileFamily generalises S1-S4: a single lead driving a piecewise
// cruise/accelerate/brake profile with an optional timed mid-phase and a
// gap-triggered final phase.
func leadProfileFamily() *Family {
	f := &Family{
		Name: "lead-profile",
		Description: "single lead with a piecewise speed profile: cruise, optional " +
			"timed phase-2 speed change, then a gap-triggered final speed " +
			"(generalises S1-S4; target_speed 0 with high decel is the S4 sudden stop)",
		Params: append(sharedParams(),
			Param{Name: "lead_speed", Min: 0, Max: 40, Default: mph30, Unit: "m/s",
				Description: "lead initial cruise speed"},
			Param{Name: "phase2_speed", Min: 0, Max: 40, Default: mph30, Unit: "m/s",
				Description: "speed adopted at phase2_time"},
			Param{Name: "phase2_time", Min: 0, Max: 100, Default: 0, Unit: "s",
				Description: "when the timed phase starts (0 disables it)"},
			Param{Name: "target_speed", Min: 0, Max: 40, Default: mph30, Unit: "m/s",
				Description: "final speed adopted when the ego gap drops below trigger_gap"},
			Param{Name: "trigger_gap", Min: 5, Max: 200, Default: 45, Unit: "m",
				Description: "ego gap that triggers the final speed change"},
			Param{Name: "decel", Min: 0.5, Max: 9, Default: 2.5, Unit: "m/s^2",
				Description: "braking limit used to reach a lower target"},
		),
	}
	f.build = func(p map[string]float64) (Instance, error) {
		behavior := scenario.BehaviorSpec{InitialSpeed: p["lead_speed"]}
		if p["phase2_time"] > 0 {
			behavior.Segments = append(behavior.Segments, scenario.SpeedSegment{
				Trigger: scenario.Trigger{Kind: scenario.TriggerAtTime, Value: p["phase2_time"]},
				Speed:   p["phase2_speed"],
				Decel:   p["decel"],
			})
		}
		behavior.Segments = append(behavior.Segments, scenario.SpeedSegment{
			Trigger: scenario.Trigger{Kind: scenario.TriggerEgoGapBelow, Value: p["trigger_gap"]},
			Speed:   p["target_speed"],
			Decel:   p["decel"],
		})
		gen := &scenario.GenSpec{Actors: []scenario.ActorSpec{{
			Name: "lead", Gap: p["initial_gap"], Speed: p["lead_speed"], Behavior: behavior,
		}}}
		return Instance{Scenario: baseSpec(p, gen), FrictionScale: p["friction_scale"]}, nil
	}
	return f
}

// cutInFamily generalises S5: a cruising lead plus a vehicle in an
// adjacent lane that merges into the ego lane when the ego closes in.
func cutInFamily() *Family {
	f := &Family{
		Name: "cut-in",
		Description: "lead cruises while an adjacent-lane vehicle cuts into the ego " +
			"lane when the ego gap drops below trigger_gap (generalises S5)",
		Params: append(sharedParams(),
			Param{Name: "lead_speed", Min: 0, Max: 40, Default: mph30, Unit: "m/s",
				Description: "lead cruise speed"},
			Param{Name: "cutin_gap", Min: 5, Max: 250, Default: 38, Unit: "m",
				Description: "initial ego gap to the cut-in vehicle"},
			Param{Name: "cutin_speed", Min: 0, Max: 40, Default: mph30, Unit: "m/s",
				Description: "cut-in vehicle cruise speed"},
			Param{Name: "trigger_gap", Min: 5, Max: 120, Default: 30, Unit: "m",
				Description: "ego gap to the cut-in vehicle that starts the merge"},
			Param{Name: "lane_change_time", Min: 0.5, Max: 10, Default: 3, Unit: "s",
				Description: "merge duration"},
			Param{Name: "lateral_offset", Min: 2.5, Max: 8, Default: road.DefaultLaneWidth, Unit: "m",
				Description: "cut-in vehicle's initial lateral offset (one lane width = adjacent lane)"},
		),
	}
	f.build = func(p map[string]float64) (Instance, error) {
		gen := &scenario.GenSpec{Actors: []scenario.ActorSpec{
			{Name: "lead", Gap: p["initial_gap"], Speed: p["lead_speed"],
				Behavior: scenario.BehaviorSpec{InitialSpeed: p["lead_speed"]}},
			{Name: "cutin", Gap: p["cutin_gap"], LaneOffset: p["lateral_offset"], Speed: p["cutin_speed"],
				Behavior: scenario.BehaviorSpec{
					InitialSpeed:     p["cutin_speed"],
					LaneTrigger:      scenario.Trigger{Kind: scenario.TriggerEgoGapBelow, Value: p["trigger_gap"]},
					TargetLaneOffset: 0,
					LaneChangeTime:   p["lane_change_time"],
				}},
		}}
		return Instance{Scenario: baseSpec(p, gen), FrictionScale: p["friction_scale"]}, nil
	}
	return f
}

// convoyFamily generalises S6's multi-vehicle setting: a convoy of N
// leads at per-actor gaps, with an optional chain-braking hazard when the
// front-most lead stops.
func convoyFamily() *Family {
	f := &Family{
		Name: "convoy",
		Description: "N leads at per-actor gaps; optionally the front-most lead " +
			"brakes to a stop when the ego closes in, propagating a chain hazard",
		Params: append(sharedParams(),
			Param{Name: "n_leads", Min: 1, Max: float64(scenario.MaxGeneratedActors), Default: 3,
				Integer: true, Description: "number of lead vehicles"},
			Param{Name: "lead_speed", Min: 0, Max: 40, Default: mph30, Unit: "m/s",
				Description: "convoy cruise speed"},
			Param{Name: "spacing", Min: 5, Max: 100, Default: 35, Unit: "m",
				Description: "additional ego gap per successive lead"},
			Param{Name: "front_stop_gap", Min: 0, Max: 200, Default: 0, Unit: "m",
				Description: "ego gap to the front lead that triggers its full stop (0 disables)"},
			Param{Name: "front_decel", Min: 0.5, Max: 9, Default: 7, Unit: "m/s^2",
				Description: "front lead's braking limit during the stop"},
		),
	}
	f.build = func(p map[string]float64) (Instance, error) {
		n := int(p["n_leads"])
		gen := &scenario.GenSpec{}
		for i := 0; i < n; i++ {
			behavior := scenario.BehaviorSpec{InitialSpeed: p["lead_speed"]}
			if i == n-1 && p["front_stop_gap"] > 0 {
				behavior.Segments = []scenario.SpeedSegment{{
					Trigger: scenario.Trigger{Kind: scenario.TriggerEgoGapBelow, Value: p["front_stop_gap"]},
					Speed:   0,
					Decel:   p["front_decel"],
				}}
			}
			gen.Actors = append(gen.Actors, scenario.ActorSpec{
				Name:     fmt.Sprintf("lead%d", i+1),
				Gap:      p["initial_gap"] + float64(i)*p["spacing"],
				Speed:    p["lead_speed"],
				Behavior: behavior,
			})
		}
		return Instance{Scenario: baseSpec(p, gen), FrictionScale: p["friction_scale"]}, nil
	}
	return f
}
