package scengen

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"adasim/internal/core"
	"adasim/internal/scenario"
)

func TestCatalogue(t *testing.T) {
	fams := Families()
	if len(fams) != 3 {
		t.Fatalf("family count = %d, want 3", len(fams))
	}
	names := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.Description == "" || len(f.Params) == 0 {
			t.Errorf("family %+v incomplete", f)
		}
		if names[f.Name] {
			t.Errorf("duplicate family name %q", f.Name)
		}
		names[f.Name] = true
		for _, p := range f.Params {
			if !(p.Min < p.Max) {
				t.Errorf("%s.%s: bad bounds [%v, %v]", f.Name, p.Name, p.Min, p.Max)
			}
			if p.Default < p.Min || p.Default > p.Max {
				t.Errorf("%s.%s: default %v outside [%v, %v]", f.Name, p.Name, p.Default, p.Min, p.Max)
			}
		}
		got, ok := ByName(f.Name)
		if !ok || got != f {
			t.Errorf("ByName(%q) = %v, %v", f.Name, got, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown family")
	}
}

// TestDefaultsInstantiateAndRun instantiates every family at its defaults
// and runs it through the closed-loop platform: generated scenarios must
// be first-class core workloads, not a parallel path.
func TestDefaultsInstantiateAndRun(t *testing.T) {
	for _, f := range Families() {
		inst, err := f.Instantiate(nil)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if inst.FrictionScale != 1 {
			t.Errorf("%s: default friction = %v, want 1", f.Name, inst.FrictionScale)
		}
		res, err := core.Run(core.Options{
			Scenario:      inst.Scenario,
			FrictionScale: inst.FrictionScale,
			Seed:          1,
			Steps:         300,
		})
		if err != nil {
			t.Fatalf("%s: run: %v", f.Name, err)
		}
		if res.Outcome.Steps == 0 {
			t.Errorf("%s: run did not step", f.Name)
		}
	}
}

func TestInstantiateValidation(t *testing.T) {
	f, _ := ByName("cut-in")
	cases := map[string]map[string]float64{
		"unknown param": {"warp_factor": 9},
		"nan":           {"trigger_gap": math.NaN()},
		"+inf":          {"trigger_gap": math.Inf(1)},
		"-inf":          {"trigger_gap": math.Inf(-1)},
		"below min":     {"trigger_gap": 1},
		"above max":     {"trigger_gap": 1000},
	}
	for name, params := range cases {
		if _, err := f.Instantiate(params); err == nil {
			t.Errorf("%s: Instantiate accepted %v", name, params)
		}
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	f, _ := ByName("lead-profile")
	params := map[string]float64{"trigger_gap": 62, "target_speed": 0, "decel": 7, "phase2_time": 4}
	a, err := f.Instantiate(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Instantiate(params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated instantiation differs")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Error("repeated instantiation encodes differently")
	}
	// The S4-like parameterisation: one timed segment plus the stop.
	segs := a.Scenario.Generated.Actors[0].Behavior.Segments
	if len(segs) != 2 || segs[1].Speed != 0 || segs[1].Decel != 7 {
		t.Errorf("segments = %+v", segs)
	}
}

func TestConvoyIntegerRounding(t *testing.T) {
	f, _ := ByName("convoy")
	inst, err := f.Instantiate(map[string]float64{"n_leads": 3.6, "front_stop_gap": 50})
	if err != nil {
		t.Fatal(err)
	}
	actors := inst.Scenario.Generated.Actors
	if len(actors) != 4 {
		t.Fatalf("n_leads 3.6 built %d actors, want 4", len(actors))
	}
	// Per-actor gaps step by spacing; only the front-most lead brakes.
	for i := 1; i < len(actors); i++ {
		if actors[i].Gap <= actors[i-1].Gap {
			t.Errorf("convoy gaps not increasing: %v", actors)
		}
		hasStop := len(actors[i].Behavior.Segments) > 0
		if wantStop := i == len(actors)-1; hasStop != wantStop {
			t.Errorf("actor %d stop segment = %v, want %v", i, hasStop, wantStop)
		}
	}
}

func TestFamilyJSONCatalogueShape(t *testing.T) {
	b, err := json.Marshal(Families())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, fam := range decoded {
		for _, key := range []string{"name", "description", "params"} {
			if _, ok := fam[key]; !ok {
				t.Errorf("catalogue entry missing %q: %v", key, fam)
			}
		}
	}
}

// TestCutInMatchesScriptedShape sanity-checks the family against the S5
// geometry it generalises: defaults place the cut-in vehicle between ego
// and lead, one lane over.
func TestCutInMatchesScriptedShape(t *testing.T) {
	f, _ := ByName("cut-in")
	inst, err := f.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	actors := inst.Scenario.Generated.Actors
	if len(actors) != 2 {
		t.Fatalf("actors = %+v", actors)
	}
	lead, cutin := actors[0], actors[1]
	if cutin.Gap >= lead.Gap {
		t.Errorf("cut-in (gap %v) should start closer than the lead (gap %v)", cutin.Gap, lead.Gap)
	}
	if cutin.LaneOffset == 0 || cutin.Behavior.LaneTrigger.Kind != scenario.TriggerEgoGapBelow {
		t.Errorf("cut-in actor = %+v", cutin)
	}
}
