// Package vehicle implements the vehicle dynamics substrate: physical
// parameters, friction-limited actuators with first-order lag, and a
// kinematic bicycle model integrated in the road's Frenet frame.
package vehicle

import (
	"fmt"
	"math"

	"adasim/internal/units"
)

// Params are the physical parameters of a passenger car. The defaults
// match a mid-size sedan (the comma.ai reference platform is a Honda
// Civic/Toyota Corolla class vehicle).
type Params struct {
	Length      float64 // bumper-to-bumper length (m)
	Width       float64 // body width (m)
	Wheelbase   float64 // axle distance (m)
	MaxAccel    float64 // engine-limited forward acceleration (m/s^2)
	MaxBrake    float64 // hardware brake authority at full pedal, dry road (m/s^2)
	MaxSteer    float64 // maximum road-wheel steering angle (rad)
	ActuatorTau float64 // first-order actuator lag time constant (s)
}

// DefaultParams returns the standard passenger-car parameters used across
// the experiments.
func DefaultParams() Params {
	return Params{
		Length:      4.9,
		Width:       1.85,
		Wheelbase:   2.7,
		MaxAccel:    3.0,
		MaxBrake:    9.8,
		MaxSteer:    units.DegToRad(30),
		ActuatorTau: 0.15,
	}
}

// Validate reports whether the parameters are physically plausible.
func (p Params) Validate() error {
	switch {
	case p.Length <= 0 || p.Width <= 0 || p.Wheelbase <= 0:
		return fmt.Errorf("vehicle: dimensions must be positive: %+v", p)
	case p.Wheelbase >= p.Length:
		return fmt.Errorf("vehicle: wheelbase %v must be shorter than length %v", p.Wheelbase, p.Length)
	case p.MaxAccel <= 0 || p.MaxBrake <= 0:
		return fmt.Errorf("vehicle: accel/brake authority must be positive")
	case p.MaxSteer <= 0 || p.MaxSteer > math.Pi/2:
		return fmt.Errorf("vehicle: MaxSteer %v out of range", p.MaxSteer)
	case p.ActuatorTau < 0:
		return fmt.Errorf("vehicle: ActuatorTau must be non-negative")
	}
	return nil
}

// MaxCurvature returns the largest path curvature the steering hardware
// can command, from the bicycle relation kappa = tan(delta)/L.
func (p Params) MaxCurvature() float64 {
	return math.Tan(p.MaxSteer) / p.Wheelbase
}

// Command is the actuator set-point applied for one control step.
type Command struct {
	Accel     float64 // desired longitudinal acceleration (m/s^2); negative brakes
	Curvature float64 // desired path curvature (1/m); positive turns left
}

// State is the vehicle state expressed in the road's Frenet frame.
type State struct {
	S     float64 // arc length along the road centreline (m)
	D     float64 // lateral offset from the reference-lane centre (m), +left
	Psi   float64 // heading relative to the road tangent (rad), +left
	V     float64 // forward speed (m/s), never negative
	Accel float64 // achieved longitudinal acceleration (m/s^2)
	Kappa float64 // achieved path curvature (1/m)
}

// StepInput carries the per-step environment context needed to integrate
// the dynamics.
type StepInput struct {
	DT            float64 // integration step (s)
	RoadCurvature float64 // road centreline curvature at the vehicle's S
	Friction      float64 // road/tyre friction coefficient
}

// Dynamics integrates a single vehicle. The zero value is not usable;
// construct with New.
type Dynamics struct {
	params Params
	state  State
}

// New constructs vehicle dynamics with the given parameters and initial
// state.
func New(params Params, initial State) (*Dynamics, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if initial.V < 0 {
		return nil, fmt.Errorf("vehicle: initial speed %v must be non-negative", initial.V)
	}
	return &Dynamics{params: params, state: initial}, nil
}

// Params returns the vehicle parameters.
func (d *Dynamics) Params() Params { return d.params }

// State returns the current state.
func (d *Dynamics) State() State { return d.state }

// SetState replaces the current state. Used by scripted actors.
func (d *Dynamics) SetState(s State) { d.state = s }

// Step advances the state by in.DT under cmd, applying actuator lag and
// friction limits. It returns the new state.
//
// Friction limits model the tyre grip circle conservatively: longitudinal
// deceleration is capped at Friction*g, and the achievable path curvature
// at speed v is capped so lateral acceleration v^2*kappa stays within
// Friction*g. On low-friction surfaces this directly degrades both braking
// distance and steering authority, which is the mechanism behind the
// paper's Table VIII.
func (d *Dynamics) Step(cmd Command, in StepInput) State {
	if in.DT <= 0 {
		return d.state
	}
	mu := in.Friction
	if mu <= 0 {
		mu = 0.9
	}
	st := d.state

	// Actuator lag: first-order response toward the commanded values.
	alpha := 1.0
	if d.params.ActuatorTau > 0 {
		alpha = 1 - math.Exp(-in.DT/d.params.ActuatorTau)
	}
	st.Accel += alpha * (cmd.Accel - st.Accel)
	st.Kappa += alpha * (cmd.Curvature - st.Kappa)

	// Friction and hardware limits.
	maxBrake := math.Min(d.params.MaxBrake, mu*units.Gravity)
	st.Accel = units.Clamp(st.Accel, -maxBrake, d.params.MaxAccel)
	kapLimit := d.params.MaxCurvature()
	if st.V > 1 {
		kapLimit = math.Min(kapLimit, mu*units.Gravity/(st.V*st.V))
	}
	st.Kappa = units.Clamp(st.Kappa, -kapLimit, kapLimit)

	// Longitudinal integration; speed never goes negative.
	v0 := st.V
	st.V = math.Max(0, st.V+st.Accel*in.DT)
	vMid := (v0 + st.V) / 2

	// Frenet kinematics.
	denom := 1 - st.D*in.RoadCurvature
	if denom < 0.2 {
		denom = 0.2 // guard against degenerate geometry far off the road
	}
	sDot := vMid * math.Cos(st.Psi) / denom
	st.S += sDot * in.DT
	st.D += vMid * math.Sin(st.Psi) * in.DT
	st.Psi += (vMid*st.Kappa - in.RoadCurvature*sDot) * in.DT
	st.Psi = wrapAngle(st.Psi)

	d.state = st
	return st
}

func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// StoppingDistance returns the distance needed to stop from speed v at
// constant deceleration a (positive), a convenience used by the AEBS and
// driver models.
func StoppingDistance(v, a float64) float64 {
	if a <= 0 {
		return math.Inf(1)
	}
	return v * v / (2 * a)
}
