package vehicle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adasim/internal/units"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name string
		mod  func(*Params)
	}{
		{"zero length", func(p *Params) { p.Length = 0 }},
		{"zero width", func(p *Params) { p.Width = 0 }},
		{"wheelbase too long", func(p *Params) { p.Wheelbase = p.Length + 1 }},
		{"zero accel", func(p *Params) { p.MaxAccel = 0 }},
		{"zero brake", func(p *Params) { p.MaxBrake = 0 }},
		{"bad steer", func(p *Params) { p.MaxSteer = 0 }},
		{"huge steer", func(p *Params) { p.MaxSteer = math.Pi }},
		{"negative tau", func(p *Params) { p.ActuatorTau = -1 }},
	}
	for _, tt := range tests {
		p := DefaultParams()
		tt.mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestMaxCurvature(t *testing.T) {
	p := DefaultParams()
	want := math.Tan(p.MaxSteer) / p.Wheelbase
	if got := p.MaxCurvature(); !almostEq(got, want, 1e-12) {
		t.Errorf("MaxCurvature = %v, want %v", got, want)
	}
}

func TestNewRejectsNegativeSpeed(t *testing.T) {
	if _, err := New(DefaultParams(), State{V: -1}); err == nil {
		t.Error("negative speed should fail")
	}
}

func TestStepZeroDT(t *testing.T) {
	d, err := New(DefaultParams(), State{V: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := d.State()
	after := d.Step(Command{Accel: 5}, StepInput{DT: 0})
	if before != after {
		t.Error("zero dt should not change state")
	}
}

func TestStraightLineIntegration(t *testing.T) {
	p := DefaultParams()
	p.ActuatorTau = 0 // no lag for exact integration
	d, err := New(p, State{V: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d.Step(Command{}, StepInput{DT: 0.01, Friction: 0.9})
	}
	st := d.State()
	if !almostEq(st.S, 200, 0.5) {
		t.Errorf("travelled %v, want ~200", st.S)
	}
	if !almostEq(st.V, 20, 1e-9) {
		t.Errorf("speed drifted to %v", st.V)
	}
	if !almostEq(st.D, 0, 1e-9) {
		t.Errorf("lateral drift %v", st.D)
	}
}

func TestSpeedNeverNegative(t *testing.T) {
	d, err := New(DefaultParams(), State{V: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		st := d.Step(Command{Accel: -9.8}, StepInput{DT: 0.01, Friction: 0.9})
		if st.V < 0 {
			t.Fatalf("negative speed %v at step %d", st.V, i)
		}
	}
	if d.State().V != 0 {
		t.Errorf("should have stopped, v = %v", d.State().V)
	}
}

func TestFrictionLimitsBraking(t *testing.T) {
	p := DefaultParams()
	p.ActuatorTau = 0
	d, err := New(p, State{V: 30})
	if err != nil {
		t.Fatal(err)
	}
	mu := 0.3
	st := d.Step(Command{Accel: -9.8}, StepInput{DT: 0.01, Friction: mu})
	if st.Accel < -mu*units.Gravity-1e-9 {
		t.Errorf("deceleration %v exceeds friction limit %v", st.Accel, -mu*units.Gravity)
	}
}

func TestFrictionLimitsCurvature(t *testing.T) {
	p := DefaultParams()
	p.ActuatorTau = 0
	v := 30.0
	d, err := New(p, State{V: v})
	if err != nil {
		t.Fatal(err)
	}
	mu := 0.5
	st := d.Step(Command{Curvature: 0.2}, StepInput{DT: 0.01, Friction: mu})
	maxKappa := mu * units.Gravity / (v * v)
	if st.Kappa > maxKappa+1e-9 {
		t.Errorf("curvature %v exceeds friction limit %v", st.Kappa, maxKappa)
	}
}

func TestActuatorLagConverges(t *testing.T) {
	d, err := New(DefaultParams(), State{V: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // 2 s >> tau
		d.Step(Command{Accel: 1.5}, StepInput{DT: 0.01, Friction: 0.9})
	}
	if !almostEq(d.State().Accel, 1.5, 0.01) {
		t.Errorf("accel = %v, want ~1.5", d.State().Accel)
	}
}

func TestLateralDynamicsTurnsLeft(t *testing.T) {
	p := DefaultParams()
	p.ActuatorTau = 0
	d, err := New(p, State{V: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d.Step(Command{Curvature: 0.01}, StepInput{DT: 0.01, Friction: 0.9})
	}
	if d.State().D <= 0 {
		t.Errorf("positive curvature should move left, D = %v", d.State().D)
	}
	if d.State().Psi <= 0 {
		t.Errorf("heading should rotate left, Psi = %v", d.State().Psi)
	}
}

func TestPhysicalInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		d, err := New(DefaultParams(), State{V: rng.Float64() * 35})
		if err != nil {
			return false
		}
		mu := 0.2 + rng.Float64()*0.7
		for i := 0; i < 100; i++ {
			cmd := Command{
				Accel:     (rng.Float64()*2 - 1) * 15,
				Curvature: (rng.Float64()*2 - 1) * 0.5,
			}
			st := d.Step(cmd, StepInput{DT: 0.01, Friction: mu})
			if st.V < 0 || math.IsNaN(st.V) || math.IsNaN(st.S) || math.IsNaN(st.D) {
				return false
			}
			if st.Accel < -mu*units.Gravity-1e-6 || st.Accel > DefaultParams().MaxAccel+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoppingDistance(t *testing.T) {
	if got := StoppingDistance(20, 5); !almostEq(got, 40, 1e-12) {
		t.Errorf("StoppingDistance(20,5) = %v", got)
	}
	if !math.IsInf(StoppingDistance(20, 0), 1) {
		t.Error("zero decel should be infinite")
	}
	if !math.IsInf(StoppingDistance(20, -3), 1) {
		t.Error("negative decel should be infinite")
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
