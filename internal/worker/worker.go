// Package worker is the remote worker node of the distributed
// execution tier: it registers with an adasimd coordinator, long-polls
// POST /v1/worker/lease for batches of runs, executes them on a local
// long-lived platform pool (experiments.Pool — the same shard engine a
// coordinator uses), and reports outcomes via POST /v1/worker/complete.
//
// A worker holds no state the coordinator depends on: outcomes are
// deterministic in the leased options, so a worker that crashes
// mid-batch simply loses its lease — the coordinator's TTL janitor
// re-queues the batch and another node (or the coordinator's own
// shards) re-executes it to the identical bytes. That makes the loop
// here deliberately simple: retry registration until it sticks, poll,
// execute, complete, and deregister on the way out.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"adasim/internal/experiments"
	"adasim/internal/metrics"
	"adasim/internal/service"
)

// Config shapes a worker node.
type Config struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name is a free-form operator label sent at registration
	// (typically the hostname).
	Name string
	// Parallelism is the local pool's shard count. Zero means
	// GOMAXPROCS.
	Parallelism int
	// LeaseWait is the long-poll wait requested per lease call (the
	// coordinator clamps it to its lease TTL). Zero means 2s.
	LeaseWait time.Duration
	// Logger receives the worker's structured log records. Nil means
	// discard.
	Logger *slog.Logger
	// HTTP is the underlying HTTP client; nil means a default client
	// with no global timeout (lease calls are long polls).
	HTTP *http.Client
	// Executor overrides the local execution engine — the chaos tests'
	// injection point (service.ChaosExecutor satisfies it). Nil means
	// experiments.NewPool(Parallelism).
	Executor experiments.Executor
}

// Worker is one registered worker node. Build with New, drive with Run.
type Worker struct {
	cfg  Config
	log  *slog.Logger
	http *http.Client
	exec experiments.Executor

	mu  sync.Mutex
	id  string        // assigned by the coordinator at registration
	ttl time.Duration // coordinator's lease TTL, from registration
}

// Backoff shape for coordinator errors (unreachable, draining): capped
// exponential so a worker outliving its coordinator stays quiet.
const (
	backoffBase = 100 * time.Millisecond
	backoffMax  = 5 * time.Second
	// completeRetries is how many times a completion report is retried;
	// an undeliverable completion is dropped — the lease will expire and
	// the batch re-execute, which is correct, just slower.
	completeRetries = 3
)

// New builds a worker node (not yet registered; Run does that).
func New(cfg Config) *Worker {
	w := &Worker{
		cfg:  cfg,
		log:  cfg.Logger,
		http: cfg.HTTP,
		exec: cfg.Executor,
	}
	if w.log == nil {
		w.log = slog.New(slog.DiscardHandler)
	}
	if w.http == nil {
		w.http = &http.Client{}
	}
	if w.exec == nil {
		w.exec = experiments.NewPool(cfg.Parallelism)
	}
	w.cfg.Coordinator = strings.TrimRight(w.cfg.Coordinator, "/")
	return w
}

// ID returns the coordinator-assigned worker ID (empty before the
// first successful registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Run registers and serves leases until ctx is canceled, then
// deregisters (best effort) so the coordinator re-queues any live lease
// immediately instead of waiting out the TTL. It returns ctx.Err() on
// cancellation — the only way Run returns.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	defer w.deregister()
	backoff := backoffBase
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		grant, status, err := w.lease(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if status == http.StatusGone {
				// Registration pruned (long pause, coordinator restart):
				// re-register and carry on.
				w.log.Warn("registration lost, re-registering", "err", err)
				if rerr := w.register(ctx); rerr != nil {
					return rerr
				}
				continue
			}
			w.log.Warn("lease poll failed", "err", err)
			if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			backoff = min(backoff*2, backoffMax)
		case grant.LeaseID == "":
			backoff = backoffBase // healthy empty poll; go straight back
		default:
			backoff = backoffBase
			w.serve(ctx, grant)
		}
	}
}

// serve executes one leased batch and reports its completion, renewing
// the lease with heartbeats while the batch runs.
func (w *Worker) serve(ctx context.Context, grant service.WorkerLeaseResponse) {
	w.log.Info("lease granted", "lease", grant.LeaseID, "runs", len(grant.Runs))
	stopHeartbeat := w.heartbeatLoop(ctx, grant)
	outcomes, execErr := w.executeBatch(grant.Runs)
	stopHeartbeat()

	req := service.WorkerCompleteRequest{
		WorkerID: w.ID(),
		LeaseID:  grant.LeaseID,
		Outcomes: outcomes,
	}
	if execErr != nil {
		req.Outcomes = nil
		req.Error = execErr.Error()
		w.log.Warn("batch failed", "lease", grant.LeaseID, "err", execErr)
	}
	var resp service.WorkerCompleteResponse
	for attempt := 0; ; attempt++ {
		_, err := w.post(ctx, "/v1/worker/complete", req, &resp)
		if err == nil {
			if resp.Duplicate {
				w.log.Info("completion was duplicate (lease expired or re-executed)", "lease", grant.LeaseID)
			}
			return
		}
		if ctx.Err() != nil || attempt >= completeRetries {
			w.log.Warn("dropping undeliverable completion (lease will expire)",
				"lease", grant.LeaseID, "err", err)
			return
		}
		sleepCtx(ctx, backoffBase<<attempt)
	}
}

// executeBatch decodes a lease's runs and executes them on the local
// pool, returning the outcomes in lease-run order.
func (w *Worker) executeBatch(runs []service.WireRun) ([]metrics.Outcome, error) {
	reqs := make([]experiments.RunRequest, len(runs))
	for i, run := range runs {
		opts, err := experiments.UnmarshalOptions(run.Opts)
		if err != nil {
			return nil, fmt.Errorf("worker: run %d: %w", i, err)
		}
		reqs[i] = experiments.RunRequest{Key: run.Key, Opts: opts}
	}
	outs, err := w.exec.Execute(reqs, nil)
	if err != nil {
		return nil, err
	}
	outcomes := make([]metrics.Outcome, len(outs))
	for i, ro := range outs {
		outcomes[i] = ro.Outcome
	}
	return outcomes, nil
}

// heartbeatLoop renews the lease every TTL/3 until the returned stop
// function is called. A dead heartbeat is only logged: if the lease
// really expired the completion will come back Duplicate, and if the
// coordinator is gone the completion will fail too — both are handled
// there.
func (w *Worker) heartbeatLoop(ctx context.Context, grant service.WorkerLeaseResponse) (stop func()) {
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond
	period := ttl / 3
	if period <= 0 {
		period = time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				var resp service.WorkerHeartbeatResponse
				req := service.WorkerHeartbeatRequest{WorkerID: w.ID(), LeaseID: grant.LeaseID}
				if _, err := w.post(ctx, "/v1/worker/heartbeat", req, &resp); err != nil {
					w.log.Warn("heartbeat failed", "lease", grant.LeaseID, "err", err)
				} else if !resp.Live {
					w.log.Warn("lease expired under us; batch will be a duplicate", "lease", grant.LeaseID)
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// register announces the worker, retrying with backoff until the
// coordinator accepts or ctx ends.
func (w *Worker) register(ctx context.Context) error {
	req := service.WorkerRegisterRequest{Name: w.cfg.Name, Parallelism: w.cfg.Parallelism}
	backoff := backoffBase
	for {
		var resp service.WorkerRegisterResponse
		_, err := w.post(ctx, "/v1/worker/register", req, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.ttl = time.Duration(resp.TTLMillis) * time.Millisecond
			w.mu.Unlock()
			w.log.Info("registered", "worker", resp.WorkerID, "coordinator", w.cfg.Coordinator)
			return nil
		}
		w.log.Warn("registration failed, retrying", "err", err)
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
		backoff = min(backoff*2, backoffMax)
	}
}

// deregister tells the coordinator this worker is leaving so its leases
// re-queue immediately. Best effort, bounded: Run's ctx is already
// canceled by now, so it uses its own short deadline.
func (w *Worker) deregister() {
	id := w.ID()
	if id == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := w.post(ctx, "/v1/worker/deregister", service.WorkerDeregisterRequest{WorkerID: id}, nil); err != nil {
		w.log.Warn("deregister failed (coordinator will prune by TTL)", "err", err)
	} else {
		w.log.Info("deregistered", "worker", id)
	}
}

// lease long-polls for the next batch.
func (w *Worker) lease(ctx context.Context) (service.WorkerLeaseResponse, int, error) {
	req := service.WorkerLeaseRequest{WorkerID: w.ID(), WaitMillis: w.leaseWait().Milliseconds()}
	var resp service.WorkerLeaseResponse
	status, err := w.post(ctx, "/v1/worker/lease", req, &resp)
	return resp, status, err
}

func (w *Worker) leaseWait() time.Duration {
	if w.cfg.LeaseWait <= 0 {
		return 2 * time.Second
	}
	return w.cfg.LeaseWait
}

// post issues one JSON POST and decodes the response into out (which
// may be nil). It returns the HTTP status (0 on transport errors) so
// callers can branch on protocol-level rejections like 410 Gone.
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(rb, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(rb)))
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.Unmarshal(rb, out)
}

// sleepCtx sleeps for d or until ctx ends; it reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
