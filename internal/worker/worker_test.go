// Loopback end-to-end tests of the distributed execution tier: a real
// coordinator (dispatcher + http.Server) with in-process worker nodes,
// byte-compared against a single-node coordinator and the direct
// engine. The distribution proof is that remote execution is invisible
// in the result bytes for every task kind.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"adasim/internal/client"
	"adasim/internal/core"
	"adasim/internal/experiments"
	"adasim/internal/explore"
	"adasim/internal/fi"
	"adasim/internal/report"
	"adasim/internal/scenario"
	"adasim/internal/service"
)

// bootCoordinator starts a dispatcher behind a real http.Server on a
// loopback listener — the same wiring as cmd/adasimd — and returns a
// client pointed at it plus the base URL workers dial.
func bootCoordinator(t *testing.T, cfg service.Config) (*client.Client, string) {
	t.Helper()
	d, err := service.NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewServer(d)}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := d.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	base := "http://" + ln.Addr().String()
	c := client.New(base)
	c.Poll = 5 * time.Millisecond
	return c, base
}

// startWorker runs a worker node against base until test cleanup (or
// an explicit stop), waiting for its registration to land so tests
// never race the remote path against the local fallback.
func startWorker(t *testing.T, base string, cfg Config) (w *Worker, stop func()) {
	t.Helper()
	cfg.Coordinator = base
	if cfg.LeaseWait == 0 {
		cfg.LeaseWait = 50 * time.Millisecond
	}
	w = New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	stop = func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("worker did not stop")
		}
	}
	t.Cleanup(stop)
	deadline := time.Now().Add(10 * time.Second)
	for w.ID() == "" {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return w, stop
}

// multiNodeCoordinator boots a coordinator with a small batch size (so
// every kind spans several leases) and two attached worker nodes.
func multiNodeCoordinator(t *testing.T) *client.Client {
	t.Helper()
	c, base := bootCoordinator(t, service.Config{
		Workers: 2, QueueSize: 16, CacheEntries: 1024,
		WorkerBatch: 2, LeaseTTL: time.Second,
	})
	startWorker(t, base, Config{Name: "node-a", Parallelism: 2})
	startWorker(t, base, Config{Name: "node-b", Parallelism: 2})
	return c
}

// runTask submits a spec on path, waits for done, and returns the raw
// result bytes.
func runTask(t *testing.T, c *client.Client, path string, spec any) []byte {
	t.Helper()
	var view service.TaskView
	if err := c.PostJSON(path, spec, &view); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitTask(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != service.StatusDone {
		t.Fatalf("task on %s = %+v", path, final)
	}
	got, err := c.GetRaw("/v1/tasks/" + final.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// jobSpec mirrors the client e2e job so the engine reference below is
// the same computation.
func jobSpec() service.JobSpec {
	return service.JobSpec{
		Scenarios:     []scenario.ID{scenario.S1},
		Gaps:          []float64{60},
		Reps:          2,
		Steps:         300,
		BaseSeed:      7,
		Salt:          2,
		Fault:         fi.DefaultParams(fi.TargetRelDistance),
		Interventions: core.InterventionSet{Driver: true},
	}
}

// TestMultiNodeJobByteIdentity proves the tentpole determinism claim
// for jobs: two-worker distributed results == single-node results ==
// direct engine bytes, and the distributed run really went remote.
func TestMultiNodeJobByteIdentity(t *testing.T) {
	multi := multiNodeCoordinator(t)
	single, _ := bootCoordinator(t, service.Config{Workers: 2, QueueSize: 16, CacheEntries: 1024})

	spec := jobSpec()
	gotMulti := runTask(t, multi, "/v1/tasks/jobs", spec)
	gotSingle := runTask(t, single, "/v1/tasks/jobs", spec)
	if !bytes.Equal(gotMulti, gotSingle) {
		t.Errorf("distributed job diverges from single-node:\n%s\nvs\n%s", gotMulti, gotSingle)
	}

	runs, err := experiments.RunMatrix(experiments.Config{Reps: 2, Steps: 300, BaseSeed: 7},
		spec.Fault, spec.Interventions, spec.Salt)
	if err != nil {
		t.Fatal(err)
	}
	var want []experiments.RunOutcome
	for _, r := range runs {
		if r.Key.Scenario == scenario.S1 && r.Key.Gap == 60 {
			want = append(want, r)
		}
	}
	hash, err := spec.Normalized().Hash()
	if err != nil {
		t.Fatal(err)
	}
	expected := wireJSON(t, service.ResultsResponse{
		SpecHash:  hash,
		TotalRuns: len(want),
		Results:   want,
		Aggregate: service.AggregateFor(want),
	})
	if !bytes.Equal(gotMulti, expected) {
		t.Errorf("distributed job diverges from direct engine:\n%s\nvs\n%s", gotMulti, expected)
	}

	requireRemoteRuns(t, multi)
}

// TestMultiNodeExplorationByteIdentity: the adaptive boundary search
// submits runs in sequential waves; distribution must not perturb it.
func TestMultiNodeExplorationByteIdentity(t *testing.T) {
	multi := multiNodeCoordinator(t)
	spec := explore.Spec{
		Family:        "cut-in",
		Steps:         400,
		Interventions: core.InterventionSet{Driver: true},
		Fixed:         map[string]float64{"cutin_gap": 25},
		Boundary:      &explore.BoundarySpec{Axis: "trigger_gap", Min: 5, Max: 60, Tolerance: 10},
	}
	got := runTask(t, multi, "/v1/tasks/explorations", spec)

	rep, _, err := explore.New(experiments.NewPool(0), nil).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if expected := wireJSON(t, rep); !bytes.Equal(got, expected) {
		t.Errorf("distributed exploration diverges from direct engine:\n%s\nvs\n%s", got, expected)
	}
	requireRemoteRuns(t, multi)
}

// TestMultiNodeReportByteIdentity: Fig6 runs record traces and are
// wire-ineligible, so this report exercises the mixed remote+local
// partition inside a single Execute call.
func TestMultiNodeReportByteIdentity(t *testing.T) {
	multi := multiNodeCoordinator(t)
	spec := report.Spec{Artifacts: []string{report.Table4, report.Fig6}, Reps: 1, Steps: 300, BaseSeed: 5}
	got := runTask(t, multi, "/v1/tasks/reports", spec)

	res, _, err := report.New(experiments.NewPool(0), nil).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if expected := wireJSON(t, res); !bytes.Equal(got, expected) {
		t.Errorf("distributed report diverges from direct engine:\n%s\nvs\n%s", got, expected)
	}
	requireRemoteRuns(t, multi)
}

// TestWorkerCrashMidBatchRecovers injects the only worker in the
// fleet with an engine that dies on its first batch (the protocol
// sees a failed completion instead of silence); the batch re-queues,
// the same node's recovered engine re-executes it, and the task
// completes with byte-identical results.
func TestWorkerCrashMidBatchRecovers(t *testing.T) {
	c, base := bootCoordinator(t, service.Config{
		Workers: 2, QueueSize: 16, CacheEntries: 1024,
		WorkerBatch: 2, LeaseTTL: time.Second,
	})
	var failures atomic.Int64
	chaotic := &service.ChaosExecutor{
		Inner: experiments.NewPool(1),
		FailRun: func(experiments.RunRequest) error {
			if failures.Add(1) == 1 {
				return context.DeadlineExceeded // any error: the engine died mid-batch
			}
			return nil
		},
	}
	startWorker(t, base, Config{Name: "chaotic", Executor: chaotic})

	spec := jobSpec()
	got := runTask(t, c, "/v1/tasks/jobs", spec)
	if failures.Load() == 0 {
		t.Fatal("chaos executor never saw a batch; test proved nothing")
	}

	single, _ := bootCoordinator(t, service.Config{Workers: 2, QueueSize: 16, CacheEntries: 1024})
	want := runTask(t, single, "/v1/tasks/jobs", spec)
	if !bytes.Equal(got, want) {
		t.Errorf("post-crash results diverge from single-node:\n%s\nvs\n%s", got, want)
	}
	requireRemoteRuns(t, c)
}

// TestWorkerGracefulExitShrinksFleet: a worker that leaves between
// tasks deregisters cleanly — the fleet view shrinks, and the
// remaining node still serves tasks remotely.
func TestWorkerGracefulExitShrinksFleet(t *testing.T) {
	c, base := bootCoordinator(t, service.Config{
		Workers: 1, QueueSize: 16, CacheEntries: 1024,
		WorkerBatch: 1, LeaseTTL: time.Second,
	})
	_, stopLeaving := startWorker(t, base, Config{Name: "leaving", Parallelism: 1})
	startWorker(t, base, Config{Name: "staying", Parallelism: 2})

	spec := jobSpec()
	spec.Reps = 4
	runTask(t, c, "/v1/tasks/jobs", spec)

	stopLeaving() // graceful: ctx cancel -> deregister on the way out
	ws, err := c.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Fleet.Connected != 1 {
		t.Errorf("connected workers after graceful exit = %d, want 1", ws.Fleet.Connected)
	}

	// A fresh task (different seed, so no cache hits) still runs
	// remotely on the surviving node.
	spec2 := spec
	spec2.BaseSeed = 11
	before := ws.Fleet.RemoteRuns
	runTask(t, c, "/v1/tasks/jobs", spec2)
	ws, err = c.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Fleet.RemoteRuns <= before {
		t.Errorf("remote runs did not grow after fleet shrink (%d -> %d)", before, ws.Fleet.RemoteRuns)
	}
}

// requireRemoteRuns asserts the fleet actually executed runs remotely —
// the guard that keeps the byte-identity tests from silently passing
// through the local fallback.
func requireRemoteRuns(t *testing.T, c *client.Client) {
	t.Helper()
	ws, err := c.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Fleet.RemoteRuns == 0 {
		t.Error("fleet executed zero remote runs; the distributed path was never exercised")
	}
	if ws.Fleet.Connected == 0 {
		t.Error("no workers connected according to /v1/workers")
	}
}

// wireJSON reproduces the server's byte-exact encoding (compact JSON
// plus a trailing newline).
func wireJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}
