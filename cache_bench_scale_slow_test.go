//go:build slowbench

package adasim

// cacheBenchEntries under -tags slowbench: the 1e6-entry stress scale.
// Building the paired JSON-layout store writes a million small files,
// so this tag is for dedicated perf runs, not the default suite.
const cacheBenchEntries = 1_000_000
